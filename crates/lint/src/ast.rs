//! Lightweight syntax tree over the token stream.
//!
//! The token walkers of the first five rules see a flat stream; the
//! rules added for the concurrency-commit discipline need *structure*:
//! which tokens form a closure body, which closure sits in the worker
//! position of a fan-out call, which `fn` a statement belongs to, which
//! names are bound locally. This module defines that structure — a
//! delimiter tree plus derived item/closure/call tables — and the
//! resolver mapping closures to worker/commit positions of the
//! `ets-parallel` entry points. [`crate::parser`] builds it; it stays
//! deliberately shallow (no types, no full expression grammar) because
//! every consumer is a lint heuristic that must never reject
//! weird-but-compiling Rust.

use crate::lexer::{Delim, Token};

/// One node of the delimiter tree: either a single token or a balanced
/// group with its children.
#[derive(Debug, Clone)]
pub enum Tree {
    /// Index into the token stream.
    Leaf(usize),
    /// A `(..)` / `[..]` / `{..}` group. `open`/`close` are token
    /// indices of the delimiters; `close` is `None` when the file ends
    /// before the group is closed (recorded as a parse error).
    Group {
        delim: Delim,
        open: usize,
        close: Option<usize>,
        children: Vec<Tree>,
    },
}

impl Tree {
    /// Token index where this node starts.
    pub fn start(&self) -> usize {
        match self {
            Tree::Leaf(i) => *i,
            Tree::Group { open, .. } => *open,
        }
    }
}

/// A structural problem found while building the tree. Compiling Rust
/// never produces one; the workspace self-parse test pins that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// A `fn` item (free function, inherent/trait method — anything the
/// `fn` keyword introduces with a name).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// Token index of the name (diagnostic anchor).
    pub name_idx: usize,
    /// Identifiers bound by the parameter list (pattern side only).
    pub params: Vec<String>,
    /// Return-type tokens joined with single spaces, `""` when absent —
    /// e.g. `"Result < () , StoreError >"`. Structured enough for the
    /// error-type sniffing `swallowed-error` does.
    pub ret: String,
    /// Token range `[start, end)` of the body including its braces;
    /// `None` for bodyless trait methods.
    pub body: Option<(usize, usize)>,
}

/// A closure literal: `|args| expr`, `move |args| { .. }`, `|| f()`.
#[derive(Debug, Clone)]
pub struct ClosureInfo {
    /// Token index of the opening `|` / `||` (diagnostic anchor).
    pub head: usize,
    /// Identifiers bound by the closure's parameter patterns.
    pub params: Vec<String>,
    /// Token range `[start, end)` of the body (brace group including
    /// braces, or the expression up to the enclosing `,` / `;` / close).
    pub body: (usize, usize),
    /// Names bound *inside* the body: `let` patterns, `for` patterns,
    /// `mut` pattern bindings, nested closure params. Flow-insensitive —
    /// used to separate closure-local mutation from captured-state
    /// mutation.
    pub locals: Vec<String>,
}

impl ClosureInfo {
    /// True if `name` is bound by this closure (param or body-local).
    pub fn binds(&self, name: &str) -> bool {
        self.params.iter().any(|p| p == name) || self.locals.iter().any(|l| l == name)
    }
}

/// A call expression `callee(args)` — free call, path call, or method
/// call (`callee` is then the method name and `method` is true).
#[derive(Debug, Clone)]
pub struct CallInfo {
    /// Last path segment before the argument list.
    pub callee: String,
    /// Token index of the callee segment.
    pub callee_idx: usize,
    /// Token index of the opening `(`.
    pub open: usize,
    /// Token index one past the closing `)`.
    pub end: usize,
    /// Token ranges `[start, end)` of the top-level comma-separated
    /// arguments (empty ranges for empty args are omitted).
    pub args: Vec<(usize, usize)>,
    /// Preceded by `.` — a method call.
    pub method: bool,
}

/// The parsed file: the delimiter tree plus derived tables. Built by
/// [`crate::parser::parse`].
#[derive(Debug, Default)]
pub struct Ast {
    pub roots: Vec<Tree>,
    pub errors: Vec<ParseError>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnInfo>,
    /// Every closure literal, in source order (so an outer closure
    /// always precedes the closures nested in its body).
    pub closures: Vec<ClosureInfo>,
    /// Every call expression, in source order.
    pub calls: Vec<CallInfo>,
}

impl Ast {
    /// The innermost `fn` whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| idx >= s && idx < e))
            .min_by_key(|f| f.body.map(|(s, e)| e - s).unwrap_or(usize::MAX))
    }
}

/// Which phase of the parallel-compute / sequential-commit discipline a
/// closure argument runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Runs concurrently on worker threads; shared mutation here is a
    /// race and a determinism hazard.
    Worker,
    /// Runs strictly sequentially on the calling thread, in canonical
    /// order (`stream_map` commit, `par_fold` merge) — `&mut` state is
    /// the sanctioned pattern.
    Commit,
}

/// Fan-out entry points of `ets-parallel` and, per entry, whether the
/// *last* closure-bearing argument is the sequential commit/merge
/// phase. (`run_parallel` is the historical name some call sites and
/// docs use for the scoped-pool entry; resolve it the same way.)
const FAN_OUT: &[(&str, bool)] = &[
    ("par_map", false),
    ("par_flat_map", false),
    ("par_map_index", false),
    ("run_parallel", false),
    // par_fold(items, init, fold, merge): merge runs sequentially in
    // chunk order on the caller's thread.
    ("par_fold", true),
    // stream_map(items, worker, commit): commit runs sequentially in
    // input order on the caller's thread.
    ("stream_map", true),
];

/// A closure resolved to a fan-out argument position.
#[derive(Debug)]
pub struct FanoutClosure<'a> {
    /// The fan-out entry point name (`par_map`, `stream_map`, ...).
    pub call: &'a str,
    /// Token index of the call (diagnostic context).
    pub call_idx: usize,
    pub phase: Phase,
    pub closure: &'a ClosureInfo,
}

/// Resolves which closures are worker bodies (and which are commit
/// bodies) of `ets-parallel` fan-out calls: for each call to a
/// `FAN_OUT` entry, each top-level argument contributing a closure is
/// classified by position — the last closure-bearing argument of
/// `par_fold`/`stream_map` is the sequential commit phase, everything
/// else runs on workers.
pub fn fanout_closures(ast: &Ast) -> Vec<FanoutClosure<'_>> {
    let mut out = Vec::new();
    for call in &ast.calls {
        let Some(&(name, has_commit)) = FAN_OUT.iter().find(|(n, _)| *n == call.callee) else {
            continue;
        };
        // The outermost closure per argument: the first closure whose
        // head lies in the argument range (nested closures start later).
        let arg_closures: Vec<(usize, &ClosureInfo)> = call
            .args
            .iter()
            .enumerate()
            .filter_map(|(slot, &(s, e))| {
                ast.closures
                    .iter()
                    .find(|c| c.head >= s && c.head < e)
                    .map(|c| (slot, c))
            })
            .collect();
        let commit_slot = if has_commit {
            arg_closures.last().map(|&(slot, _)| slot)
        } else {
            None
        };
        for (slot, closure) in arg_closures {
            out.push(FanoutClosure {
                call: name,
                call_idx: call.callee_idx,
                phase: if Some(slot) == commit_slot {
                    Phase::Commit
                } else {
                    Phase::Worker
                },
                closure,
            });
        }
    }
    out
}

/// Walks left from the token *before* `op_idx` to the root identifier
/// of an assignment target (or borrow target): skips `.field` / `.0`
/// chains, `[index]` groups, and leading `*` derefs. Returns the token
/// index of the root identifier, or `None` when the target does not
/// start with a plain identifier (e.g. `(*ptr).x`, slice patterns).
pub fn lvalue_root(toks: &[Token], op_idx: usize) -> Option<usize> {
    use crate::lexer::TokKind;
    let mut i = op_idx;
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        match toks[i].kind {
            // `[index]` — skip to the matching open bracket.
            TokKind::Close(Delim::Bracket) => {
                let mut depth = 0i32;
                loop {
                    match toks[i].kind {
                        TokKind::Close(_) => depth += 1,
                        TokKind::Open(_) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if i == 0 {
                        return None;
                    }
                    i -= 1;
                }
            }
            TokKind::Ident | TokKind::Number => {
                // Continue only while the chain extends left via `.`.
                if i >= 1 && toks[i - 1].is_punct(".") {
                    i -= 1; // land on the `.`; loop decrements past it
                    continue;
                }
                return if toks[i].kind == TokKind::Ident {
                    Some(i)
                } else {
                    None
                };
            }
            _ => return None,
        }
    }
}
