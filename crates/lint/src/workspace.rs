//! Workspace discovery and the whole-tree lint driver.
//!
//! `--workspace` walks every member crate's `src/` tree (plus the root
//! package) with no cargo involvement: crate names are read straight
//! from each `Cargo.toml`, and per-file [`FileMeta`] facts are derived
//! from the crate layout. File order is sorted, so output is
//! deterministic — the analyzer holds itself to the invariant it
//! enforces.

use crate::{lint_ctx, Diagnostic, FileCtx, FileMeta, Tier};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Crates whose outputs feed result files — the `unordered-iteration`
/// scope. (`ets-mail`/`ets-smtp` are wire-format codecs and
/// `ets-parallel` is the execution substrate; their iteration order
/// never reaches a result file directly.)
pub const ANALYTICAL_CRATES: &[&str] = &[
    "ets-core",
    "ets-collector",
    "ets-ecosystem",
    "ets-experiments",
    "ets-honeypot",
    "ets-dns",
    "ets-obs",
    "ets-scan",
    // Snapshot bytes are compared (and checksummed) verbatim, so the
    // container writer's iteration order is result-affecting too.
    "ets-store",
];

/// Files allowed to read the wall clock: the microbenchmark harness plus
/// everything in `ets-bench`. (`lab.rs` used to be here; its stage timers
/// now go through `ets-obs`, whose clock access is confined to the
/// path-exact entry below.)
pub const TIMING_ALLOWLIST_FILES: &[&str] = &["microbench.rs"];
pub const TIMING_ALLOWLIST_CRATES: &[&str] = &["ets-bench"];
/// Workspace-relative paths allowed to read the wall clock. Path-exact on
/// purpose: `crates/obs/src/clock.rs` is the *only* wall-clock source in
/// the observability subsystem, `crates/smtp/src/telemetry.rs` is the
/// only one in the SMTP serving plane (per-phase latency observers), and
/// `crates/loadgen/src/runner.rs` is the only one in the load harness
/// (open-loop pacing and request latency) — so a `clock.rs`/
/// `telemetry.rs`/`runner.rs` in any other crate, or `Instant::now`
/// anywhere else in `ets-obs`/`ets-smtp`/`ets-loadgen`, is still denied.
pub const TIMING_ALLOWLIST_PATHS: &[&str] = &[
    "crates/obs/src/clock.rs",
    "crates/smtp/src/telemetry.rs",
    "crates/loadgen/src/runner.rs",
];

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// A discovered workspace member.
#[derive(Debug)]
pub struct Crate {
    pub name: String,
    /// Crate directory, absolute.
    pub dir: PathBuf,
    /// Has a `src/lib.rs` (library target).
    pub has_lib: bool,
}

/// Reads `name = "..."` out of a crate manifest.
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Enumerates the root package plus every `crates/*` member, sorted by
/// name.
pub fn discover_crates(root: &Path) -> std::io::Result<Vec<Crate>> {
    let mut out = Vec::new();
    if root.join("src").is_dir() {
        if let Some(name) = package_name(&root.join("Cargo.toml")) {
            out.push(Crate {
                name,
                dir: root.to_path_buf(),
                has_lib: root.join("src/lib.rs").is_file(),
            });
        }
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            let manifest = dir.join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            if let Some(name) = package_name(&manifest) {
                out.push(Crate {
                    name,
                    has_lib: dir.join("src/lib.rs").is_file(),
                    dir,
                });
            }
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(out)
}

/// Collects every `.rs` file under `dir`, recursively, sorted. Public
/// so the self-parse test can walk exactly the files the driver lints.
pub fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let p = entry?.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Builds the [`FileMeta`] for one source file of `krate`.
pub fn file_meta(root: &Path, krate: &Crate, path: &Path) -> FileMeta {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let display_path = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned();
    let rel_to_src = path
        .strip_prefix(krate.dir.join("src"))
        .map(|p| p.to_string_lossy().into_owned())
        .unwrap_or_default();
    let is_crate_root = rel_to_src == "lib.rs" || rel_to_src == "main.rs";
    FileMeta {
        analytical: ANALYTICAL_CRATES.contains(&krate.name.as_str()),
        // Binary entry points may panic on bad usage; library code may not.
        library: krate.has_lib && rel_to_src != "main.rs",
        timing_allowed: TIMING_ALLOWLIST_CRATES.contains(&krate.name.as_str())
            || TIMING_ALLOWLIST_FILES.contains(&file_name.as_str())
            || TIMING_ALLOWLIST_PATHS.contains(&display_path.as_str()),
        crate_name: krate.name.clone(),
        display_path,
        file_name,
        is_crate_root,
    }
}

/// Result of a whole-workspace lint pass.
pub struct WorkspaceReport {
    pub diagnostics: Vec<Diagnostic>,
    /// Warn-tier (`panic-in-library`) counts per crate, for the budget.
    pub warn_counts: BTreeMap<String, usize>,
    /// `ets-lint: allow(...)` pragma counts per crate, for the pragma
    /// budget ratchet. Doc-comment mentions are excluded at parse time.
    pub pragma_counts: BTreeMap<String, usize>,
}

impl WorkspaceReport {
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.tier == Tier::Deny)
            .count()
    }
}

/// Lints every member crate's `src/` tree under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut diagnostics = Vec::new();
    let mut warn_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut pragma_counts: BTreeMap<String, usize> = BTreeMap::new();
    for krate in discover_crates(root)? {
        let src_dir = krate.dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        for path in rust_files(&src_dir)? {
            let meta = file_meta(root, &krate, &path);
            let src = std::fs::read_to_string(&path)?;
            let ctx = FileCtx::new(&meta, &src);
            if ctx.pragma_count > 0 {
                *pragma_counts.entry(krate.name.clone()).or_default() += ctx.pragma_count;
            }
            for d in lint_ctx(&ctx) {
                if d.tier == Tier::Warn {
                    *warn_counts.entry(krate.name.clone()).or_default() += 1;
                }
                diagnostics.push(d);
            }
        }
    }
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(WorkspaceReport {
        diagnostics,
        warn_counts,
        pragma_counts,
    })
}
