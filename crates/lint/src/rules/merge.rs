//! rule `non-commutative-merge` (deny): commutativity discipline for
//! accumulator merges.
//!
//! PR 6's streaming contract is that `FunnelState::merge` /
//! `StreamFunnel::absorb` fold partial accumulators into a total whose
//! value is independent of chunking — workers may produce partials in
//! any grouping, and the sequential commit folds them in canonical
//! order. That only yields byte-identical results if the fold is
//! order-insensitive (commutative + associative) *or* the call order is
//! itself pinned. Inside any `fn merge(..)` / `fn absorb(..)` this rule
//! flags the operations that break commutativity:
//!
//! - subtraction / division on accumulator state (`-=`, `/=`) — not
//!   commutative, a chunking change reorders operands;
//! - `push` / `extend` / `append` without a subsequent deterministic
//!   sort in the same body — concatenation order is call order;
//! - float accumulation (`+=` / `*=` with a float operand hint) — FP
//!   addition is not associative, so grouping leaks into the result
//!   (`float-reduction-order` covers fan-out closures; this covers the
//!   merge fns themselves).
//!
//! A merge whose call order is pinned by construction (e.g. a commit
//! phase draining a reorder buffer in canonical epoch order) documents
//! that with an `// ets-lint: allow(non-commutative-merge): reason`
//! pragma.

use crate::lexer::{Delim, TokKind};
use crate::rules::{statement_has_float_hint, ORDERING_IDENTS};
use crate::{Diagnostic, FileCtx, Tier};

const RULE: &str = "non-commutative-merge";

/// Function names bound by the accumulator-merge contract.
const MERGE_FNS: &[&str] = &["merge", "absorb"];

/// Appending methods whose result depends on call order unless sorted
/// afterwards.
const APPEND_METHODS: &[&str] = &["push", "extend", "append", "push_back", "push_front"];

pub fn non_commutative_merge(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.tokens;
    for f in &ctx.ast.fns {
        if !MERGE_FNS.contains(&f.name.as_str()) {
            continue;
        }
        let Some((body_s, body_e)) = f.body else {
            continue;
        };
        let body_e = body_e.min(toks.len());
        for i in body_s..body_e {
            let t = &toks[i];
            if ctx.in_test_code(i) || ctx.allowed(RULE, t.line) {
                continue;
            }
            if t.kind == TokKind::Punct && matches!(t.text.as_str(), "-=" | "/=") {
                out.push(ctx.diag(
                    RULE,
                    Tier::Deny,
                    t,
                    format!(
                        "`{}` in `fn {}`: subtraction/division does not commute, so the \
                         merged value depends on chunk grouping; restructure the \
                         accumulator so merges only add",
                        t.text, f.name
                    ),
                ));
                continue;
            }
            if t.kind == TokKind::Punct
                && matches!(t.text.as_str(), "+=" | "*=")
                && statement_has_float_hint(toks, i, body_s, body_e)
            {
                out.push(ctx.diag(
                    RULE,
                    Tier::Deny,
                    t,
                    format!(
                        "float accumulation in `fn {}`: FP addition is not associative, \
                         so the merged value depends on chunk grouping; accumulate in \
                         integers (or fixed order) and derive floats at the end",
                        f.name
                    ),
                ));
                continue;
            }
            // `.push(..)` / `.extend(..)` with no deterministic sort
            // later in the same body.
            let is_append = t.kind == TokKind::Ident
                && APPEND_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Open(Delim::Paren));
            if is_append {
                let sorted_later = toks[i..body_e].iter().any(|n| {
                    n.kind == TokKind::Ident && ORDERING_IDENTS.contains(&n.text.as_str())
                });
                if !sorted_later {
                    out.push(ctx.diag(
                        RULE,
                        Tier::Deny,
                        t,
                        format!(
                            "`.{}(..)` in `fn {}` without a subsequent deterministic sort: \
                             concatenation order is merge-call order, which chunking \
                             controls; sort the collection before it leaves the merge, or \
                             justify that call order is pinned",
                            t.text, f.name
                        ),
                    ));
                }
            }
        }
    }
}
