//! rule `shared-mutation-in-fanout` (deny): the race detector for the
//! parallel-compute / sequential-commit discipline.
//!
//! Worker closures of the `ets-parallel` fan-out entry points run
//! concurrently on scoped threads; any write that escapes the closure —
//! an assignment whose target is a captured binding, a mutating
//! collection call on a captured receiver, a lock acquisition, atomic
//! read-modify-write, or interior mutability — is at best a determinism
//! hazard and at worst a data race the commit phase was designed to
//! make impossible. Commit/merge closures (`stream_map`'s third
//! argument, `par_fold`'s merge) run strictly sequentially on the
//! calling thread and are exempt: `&mut` state there *is* the
//! sanctioned pattern.
//!
//! The rule leans on the [`crate::ast`] layer: closure bodies, the
//! bindings each closure owns (params + `let`/`for`/`mut` pattern
//! locals + nested-closure params), and the worker-position resolver.
//! Anything the closure binds itself is private per-item state and
//! never flagged.

use crate::ast::{fanout_closures, lvalue_root, Phase};
use crate::lexer::{Delim, TokKind};
use crate::rules::stmt_start_before;
use crate::{Diagnostic, FileCtx, Tier};

const RULE: &str = "shared-mutation-in-fanout";

/// Assignment operators (the lexer max-munches `==`, `=>`, `<=`, `>=`,
/// `!=` into distinct tokens, so a bare `=` here is a store).
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Mutating collection/string methods: called on a captured receiver
/// inside a worker, these are cross-thread writes.
const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_str",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
    "clear",
    "remove",
    "truncate",
    "drain",
    "retain",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Synchronization / interior-mutability methods that are suspect in a
/// worker regardless of the receiver: taking a lock or doing an atomic
/// RMW inside the fan-out reintroduces exactly the cross-thread
/// ordering dependence the discipline exists to remove.
const SYNC_METHODS: &[&str] = &[
    "lock",
    "borrow_mut",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

pub fn shared_mutation_in_fanout(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.tokens;
    for fc in fanout_closures(&ctx.ast) {
        if fc.phase == Phase::Commit {
            continue;
        }
        let (body_s, body_e) = fc.closure.body;
        for i in body_s..body_e.min(toks.len()) {
            let t = &toks[i];
            if ctx.in_test_code(i) || ctx.allowed(RULE, t.line) {
                continue;
            }
            // Assignment to a binding the closure does not own. A `=`
            // in a `let` statement is an initializer, not a store (the
            // target there is a fresh binding — and walking left from
            // the `=` would land on the type annotation, not the name).
            if t.kind == TokKind::Punct && ASSIGN_OPS.contains(&t.text.as_str()) {
                let stmt = stmt_start_before(toks, i, body_s);
                if toks[stmt].is_ident("let") {
                    continue;
                }
                if let Some(root) = lvalue_root(toks, i) {
                    let name = toks[root].text.as_str();
                    if !fc.closure.binds(name) && !is_type_path(name) {
                        out.push(ctx.diag(
                            RULE,
                            Tier::Deny,
                            t,
                            format!(
                                "worker closure of `{}` writes to `{name}`, which it captures \
                                 from the enclosing scope; workers must only touch \
                                 closure-local state — return the value and mutate in the \
                                 sequential commit/merge phase instead",
                                fc.call
                            ),
                        ));
                    }
                }
                continue;
            }
            if t.kind != TokKind::Ident {
                continue;
            }
            let is_method_call = i > 0
                && toks[i - 1].is_punct(".")
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Open(Delim::Paren));
            if !is_method_call {
                continue;
            }
            // `.write()` with no argument is RwLock's write lock;
            // `io::Write::write` always takes a buffer.
            let is_write_lock = t.text == "write"
                && toks
                    .get(i + 2)
                    .is_some_and(|n| n.kind == TokKind::Close(Delim::Paren));
            if SYNC_METHODS.contains(&t.text.as_str()) || is_write_lock {
                out.push(ctx.diag(
                    RULE,
                    Tier::Deny,
                    t,
                    format!(
                        "`.{}()` inside a worker closure of `{}`: locks, atomics, and \
                         interior mutability reintroduce cross-thread ordering into the \
                         fan-out; move the shared update into the sequential commit phase",
                        t.text, fc.call
                    ),
                ));
                continue;
            }
            if MUTATING_METHODS.contains(&t.text.as_str()) {
                // Receiver root: the identifier the `.method(..)` chain
                // hangs off. Unresolvable receivers (temporaries like
                // `f().push(..)`) are closure-local by construction.
                let Some(root) = lvalue_root(toks, i - 1) else {
                    continue;
                };
                let name = toks[root].text.as_str();
                if !fc.closure.binds(name) && !is_type_path(name) {
                    out.push(ctx.diag(
                        RULE,
                        Tier::Deny,
                        t,
                        format!(
                            "worker closure of `{}` calls `{name}.{}(..)` on a captured \
                             binding; collect per-item results and apply them in the \
                             sequential commit/merge phase",
                            fc.call, t.text
                        ),
                    ));
                }
            }
        }
    }
}

/// Capitalized roots are type paths (`Vec::new`, `String::from`), not
/// captured bindings.
fn is_type_path(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}
