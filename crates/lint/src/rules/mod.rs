//! The five determinism & hygiene rules.
//!
//! All rules work on the flat token stream with positions; none of them
//! needs type information. Where a rule is heuristic (tracking which
//! locals are hash collections, spotting an adjacent sort) the
//! heuristics are deliberately conservative-in-one-direction: a false
//! positive costs one `// ets-lint: allow(...)` pragma with a written
//! justification, while a false negative silently erodes the
//! reproducibility invariant the whole pipeline is built on.

pub mod errors;
pub mod fanout;
pub mod merge;

use crate::lexer::{is_float_literal, Delim, TokKind, Token};
use crate::{Diagnostic, FileCtx, Tier};
use std::collections::BTreeSet;

/// Methods whose iteration order is the hash map's internal order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Identifiers whose presence near an unordered iteration makes it
/// deterministic: an explicit sort, or re-collection into an ordered
/// structure.
pub(crate) const ORDERING_IDENTS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Chain terminals whose result does not depend on iteration order
/// (for `sum`/`product` only with an integer turbofish — FP addition is
/// not associative).
const ORDER_FREE_TERMINALS: &[&str] = &["count", "any", "all", "len", "is_empty"];

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// How many lines past the end of the enclosing statement (or loop
/// body) an ordering operation still counts as "adjacent"
/// (collect-then-sort spans a few lines).
const SORT_WINDOW: u32 = 5;

/// Line where the construct containing token `start` ends: the `;`
/// closing the statement, the matching `}` of a body opened at depth 0,
/// or the close of the enclosing group.
fn construct_end_line(toks: &[Token], start: usize) -> u32 {
    let mut depth = 0i32;
    let mut j = start;
    let mut last_line = toks[start].line;
    while let Some(t) = toks.get(j) {
        last_line = t.line;
        match t.kind {
            TokKind::Open(Delim::Brace) if depth == 0 => {
                // A body (for/if/match) — run to its matching close.
                let mut d = 0i32;
                while let Some(b) = toks.get(j) {
                    match b.kind {
                        TokKind::Open(_) => d += 1,
                        TokKind::Close(_) => {
                            d -= 1;
                            if d == 0 {
                                return b.line;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return last_line;
            }
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => {
                if depth == 0 {
                    return last_line;
                }
                depth -= 1;
            }
            TokKind::Punct if depth == 0 && t.text == ";" => return t.line,
            _ => {}
        }
        j += 1;
    }
    last_line
}

/// rule `unordered-iteration` (deny): iterating a `HashMap`/`HashSet`
/// in non-test code of an analytical crate, without an adjacent
/// ordering operation, an order-free terminal, or an allow pragma.
///
/// Hash-typed names are tracked per file, flow-insensitively: a binding
/// or parameter annotated `HashMap<..>`/`HashSet<..>`, or initialized
/// from `HashMap::`/`HashSet::` constructors.
pub fn unordered_iteration(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "unordered-iteration";
    if !ctx.meta.analytical {
        return;
    }
    let toks = &ctx.tokens;
    let hash_idents = collect_hash_idents(toks);
    let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();

    let mut flag = |ctx: &FileCtx, i: usize, tok: &Token, what: &str, out: &mut Vec<Diagnostic>| {
        let window_end = construct_end_line(toks, i) + SORT_WINDOW;
        if ctx.in_test_code(i)
            || ctx.allowed(RULE, tok.line)
            || flagged_lines.contains(&tok.line)
            || ctx.window_has_ident(tok.line, window_end, ORDERING_IDENTS)
        {
            return;
        }
        flagged_lines.insert(tok.line);
        out.push(ctx.diag(
            RULE,
            Tier::Deny,
            tok,
            format!(
                "{what} iterates a hash collection in iteration order; sort the output, \
                 re-collect into a BTreeMap/BTreeSet, or justify with \
                 `// ets-lint: allow(unordered-iteration)`"
            ),
        ));
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // `for PAT in <head> {` where <head> mentions a hash-typed name.
        if t.is_ident("for") && !toks.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut in_kw = None;
            while let Some(n) = toks.get(j) {
                match n.kind {
                    TokKind::Open(_) => depth += 1,
                    TokKind::Close(_) => depth -= 1,
                    TokKind::Ident if depth == 0 && n.text == "in" => {
                        in_kw = Some(j);
                        break;
                    }
                    // `impl Trait for Type {` has no `in`; stop at `{`.
                    TokKind::Punct if depth == 0 && (n.text == ";" || n.text == "{") => break,
                    _ => {}
                }
                if n.kind == TokKind::Open(Delim::Brace) && depth == 1 {
                    break;
                }
                j += 1;
            }
            if let Some(start) = in_kw {
                let mut k = start + 1;
                let mut depth = 0i32;
                let mut body_open = None;
                let mut hash_hits: Vec<usize> = Vec::new();
                while let Some(n) = toks.get(k) {
                    match n.kind {
                        TokKind::Open(Delim::Brace) if depth == 0 => {
                            body_open = Some(k);
                            break;
                        }
                        TokKind::Open(_) => depth += 1,
                        TokKind::Close(_) => depth -= 1,
                        // Skip when the loop head itself re-collects or
                        // the chain ends order-free.
                        TokKind::Ident
                            if hash_idents.contains(n.text.as_str())
                                && !chain_is_order_free(toks, k) =>
                        {
                            hash_hits.push(k);
                        }
                        _ => {}
                    }
                    k += 1;
                }
                // A body made solely of commutative entry-folds
                // (`*map.entry(k).or_insert(0) += v;`) is order-free:
                // integer addition keyed by the entry commutes across
                // the iteration order.
                let exempt = body_open.is_some_and(|b| body_is_commutative_entry_fold(toks, b));
                if !exempt {
                    for h in hash_hits {
                        flag(ctx, h, &toks[h], "for-loop head", out);
                    }
                }
                i = k;
                continue;
            }
        }
        // `name.iter()` / `.keys()` / ... on a tracked hash name.
        if t.kind == TokKind::Ident
            && hash_idents.contains(t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Ident && HASH_ITER_METHODS.contains(&n.text.as_str())
            })
            && toks
                .get(i + 3)
                .is_some_and(|n| n.kind == TokKind::Open(Delim::Paren))
            && !chain_is_order_free(toks, i)
        {
            let method = toks[i + 2].text.clone();
            flag(ctx, i, t, &format!("`{}.{method}()`", t.text), out);
        }
        i += 1;
    }
}

/// True if the brace group at `open` consists solely of commutative
/// entry-fold statements — `*map.entry(k).or_insert(0) += v;` — i.e.
/// every `;`-terminated statement routes exactly one integer `+=`
/// through an `entry(..).or_insert(..)/or_default()` chain, with no
/// float operands and no other assignment. Folding such a body over a
/// hash iteration is iteration-order-free.
fn body_is_commutative_entry_fold(toks: &[Token], open: usize) -> bool {
    let mut depth = 0i32;
    let mut close = open;
    while let Some(t) = toks.get(close) {
        match t.kind {
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        close += 1;
    }
    if close >= toks.len() || close <= open + 1 {
        return false;
    }
    let mut stmt_start = open + 1;
    let mut saw_stmt = false;
    let mut d = 0i32;
    for j in open + 1..close {
        match toks[j].kind {
            TokKind::Open(_) => d += 1,
            TokKind::Close(_) => d -= 1,
            TokKind::Punct if d == 0 && toks[j].text == ";" => {
                if !stmt_is_entry_fold(&toks[stmt_start..j]) {
                    return false;
                }
                saw_stmt = true;
                stmt_start = j + 1;
            }
            _ => {}
        }
    }
    // A trailing expression (no `;`) disqualifies the body.
    saw_stmt && stmt_start == close
}

fn stmt_is_entry_fold(stmt: &[Token]) -> bool {
    let mut plus_eq = 0usize;
    let mut has_entry = false;
    let mut has_or = false;
    for t in stmt {
        match t.kind {
            TokKind::Ident if t.text == "entry" => has_entry = true,
            TokKind::Ident if t.text == "or_insert" || t.text == "or_default" => has_or = true,
            TokKind::Ident if t.text == "f32" || t.text == "f64" => return false,
            TokKind::Number if is_float_literal(&t.text) => return false,
            TokKind::Punct if t.text == "+=" => plus_eq += 1,
            TokKind::Punct
                if matches!(
                    t.text.as_str(),
                    "=" | "-=" | "*=" | "/=" | "%=" | "|=" | "&=" | "^=" | "<<=" | ">>="
                ) =>
            {
                return false;
            }
            _ => {}
        }
    }
    has_entry && has_or && plus_eq == 1
}

/// Collects names bound or annotated as `HashMap`/`HashSet` anywhere in
/// the file (locals, params, struct fields — flow-insensitive).
fn collect_hash_idents(toks: &[Token]) -> BTreeSet<&str> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk left over `&`/`mut`/lifetimes and any qualifying path
        // segments (`std :: collections ::`) so both `m: &HashMap<..>`
        // and `m: &std::collections::HashMap<..>` resolve to `m`.
        let mut j = i;
        loop {
            if j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
                j -= 2;
            } else if j > 0
                && (toks[j - 1].is_punct("&")
                    || toks[j - 1].is_ident("mut")
                    || toks[j - 1].kind == TokKind::Lifetime)
            {
                j -= 1;
            } else {
                break;
            }
        }
        // Annotation: `name : [& mut 'a path::] HashMap`.
        if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.as_str());
            continue;
        }
        // Initializer: `name = [path::] HashMap::ctor(..)`.
        if j >= 2
            && toks[j - 1].is_punct("=")
            && toks[j - 2].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
        {
            names.insert(toks[j - 2].text.as_str());
        }
    }
    names
}

/// Starting at the receiver token index, walks a `.method(args)` chain
/// and returns true if it terminates order-free: an [`ORDER_FREE_TERMINALS`]
/// call, `sum::<int>()`/`product::<int>()`, `min()`/`max()`, a
/// `collect` straight into a hash/btree collection (visible as a
/// turbofish or a nearby annotation is handled by the sort window), or
/// `extend`ing another hash collection.
fn chain_is_order_free(toks: &[Token], recv: usize) -> bool {
    let mut i = recv + 1;
    loop {
        if !toks.get(i).is_some_and(|t| t.is_punct(".")) {
            return false;
        }
        let Some(m) = toks.get(i + 1) else {
            return false;
        };
        if m.kind != TokKind::Ident {
            return false;
        }
        let name = m.text.as_str();
        // Position after the method name: turbofish or arg list.
        let mut j = i + 2;
        let mut turbofish: Vec<&str> = Vec::new();
        if toks.get(j).is_some_and(|t| t.is_punct("::")) {
            // Collect idents inside `::< ... >`.
            let mut depth = 0i32;
            j += 1;
            while let Some(t) = toks.get(j) {
                match t.kind {
                    TokKind::Punct if t.text == "<" => depth += 1,
                    TokKind::Punct if t.text == ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    TokKind::Ident => turbofish.push(t.text.as_str()),
                    _ => {}
                }
                j += 1;
            }
        }
        match name {
            _ if ORDER_FREE_TERMINALS.contains(&name) => return true,
            "min" | "max" => return true,
            "sum" | "product" => {
                return turbofish.iter().any(|t| INT_TYPES.contains(t));
            }
            "collect" => {
                return turbofish
                    .iter()
                    .any(|t| matches!(*t, "HashMap" | "HashSet" | "BTreeMap" | "BTreeSet"));
            }
            "contains" | "contains_key" | "get" | "insert" | "extend" => return true,
            _ => {}
        }
        // Skip the argument group and continue down the chain.
        if !toks
            .get(j)
            .is_some_and(|t| t.kind == TokKind::Open(Delim::Paren))
        {
            return false;
        }
        let mut depth = 0i32;
        while let Some(t) = toks.get(j) {
            match t.kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// rule `nondeterministic-source` (deny): wall-clock or entropy reads
/// outside the timing-only allowlist. Timing-allowed files may read the
/// clock; nothing in the workspace may touch OS entropy.
pub fn nondeterministic_source(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "nondeterministic-source";
    if ctx.meta.timing_allowed {
        return;
    }
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "Instant" => {
                toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
            }
            "SystemTime" | "thread_rng" | "RandomState" | "from_entropy" => true,
            _ => false,
        };
        if hit && !ctx.allowed(RULE, t.line) {
            out.push(ctx.diag(
                RULE,
                Tier::Deny,
                t,
                format!(
                    "`{}` is a nondeterministic source; analytical paths must draw from \
                     seeded `ChaCha8Rng` streams (`ets_parallel::derive_rng`) and never \
                     read the wall clock",
                    t.text
                ),
            ));
        }
    }
}

/// Fan-out entry points of `ets-parallel`. Work inside these closures
/// runs chunked, and *chunk boundaries depend on the worker count* —
/// so any floating-point reduction crossing items inside them is
/// thread-count-dependent even though results merge in order.
const PAR_CALLS: &[&str] = &["par_map", "par_flat_map", "par_map_index", "par_fold"];

/// rule `float-reduction-order` (deny): float accumulation (`+=`/`-=`/
/// `*=` with a float hint, or `sum::<f64>()`/`product::<f64>()`) inside
/// an `ets-parallel` fan-out call. The sanctioned pattern is
/// parallel-compute / sequential-commit: `par_map` per-item values,
/// then reduce sequentially outside the fan-out.
pub fn float_reduction_order(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "float-reduction-order";
    let toks = &ctx.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || !PAR_CALLS.contains(&t.text.as_str())
            || !toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Open(Delim::Paren))
        {
            i += 1;
            continue;
        }
        // Find the matching close of the argument group.
        let open = i + 1;
        let mut depth = 0i32;
        let mut close = open;
        while let Some(n) = toks.get(close) {
            match n.kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        for j in open + 1..close {
            let n = &toks[j];
            let is_float_acc = n.kind == TokKind::Punct
                && matches!(n.text.as_str(), "+=" | "-=" | "*=")
                && statement_has_float_hint(toks, j, open, close);
            let is_float_sum = n.kind == TokKind::Ident
                && matches!(n.text.as_str(), "sum" | "product")
                && turbofish_has_float(toks, j + 1);
            if (is_float_acc || is_float_sum) && !ctx.in_test_code(j) && !ctx.allowed(RULE, n.line)
            {
                out.push(ctx.diag(
                    RULE,
                    Tier::Deny,
                    n,
                    format!(
                        "floating-point accumulation inside `{}` fan-out: chunk boundaries \
                         depend on the worker count, so FP reduction here is thread-dependent; \
                         par_map the per-item values and reduce sequentially after the join",
                        t.text
                    ),
                ));
            }
        }
        i = close + 1;
    }
}

/// Index of the first token of the statement containing `at`: walks
/// backward to the nearest `;` / `{` at the same nesting level (never
/// crossing below `lo`) and returns the index just past it. A `}` at
/// the same level also ends the search — in statement position a block
/// (`if`/`for`/`match` statement) terminates the preceding statement;
/// the rare expression-position block receiver (`match e { .. }.f()`)
/// merely shortens the range, which is the conservative direction.
pub(crate) fn stmt_start_before(toks: &[Token], at: usize, lo: usize) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    while i > lo {
        let t = &toks[i - 1];
        match t.kind {
            TokKind::Close(Delim::Brace) if depth == 0 => return i,
            TokKind::Close(_) => depth += 1,
            TokKind::Open(_) => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            TokKind::Punct if depth == 0 && t.text == ";" => return i,
            _ => {}
        }
        i -= 1;
    }
    lo
}

/// Looks for a float hint (an `f32`/`f64` ident, a float literal, or
/// `as f64`) in the statement containing token `at`, bounded to the
/// enclosing fan-out argument group.
pub(crate) fn statement_has_float_hint(toks: &[Token], at: usize, lo: usize, hi: usize) -> bool {
    let mut start = at;
    while start > lo {
        let t = &toks[start - 1];
        if t.is_punct(";") || t.kind == TokKind::Open(Delim::Brace) {
            break;
        }
        start -= 1;
    }
    let mut end = at;
    while end < hi {
        if toks[end].is_punct(";") {
            break;
        }
        end += 1;
    }
    toks[start..end].iter().any(|t| {
        (t.kind == TokKind::Ident && (t.text == "f64" || t.text == "f32"))
            || (t.kind == TokKind::Number && is_float_literal(&t.text))
    })
}

fn turbofish_has_float(toks: &[Token], at: usize) -> bool {
    if !toks.get(at).is_some_and(|t| t.is_punct("::")) {
        return false;
    }
    let mut j = at + 1;
    let mut depth = 0i32;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokKind::Punct if t.text == "<" => depth += 1,
            TokKind::Punct if t.text == ">" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            TokKind::Ident if t.text == "f64" || t.text == "f32" => return true,
            TokKind::Open(Delim::Paren) => return false,
            _ => {}
        }
        j += 1;
    }
    false
}

/// rule `panic-in-library` (warn): `unwrap()` / `expect()` / `panic!` /
/// `unreachable!` in library crates outside tests and `const` items.
/// Warn-tier: counted against `crates/lint/panic_budget.json` so the
/// existing debt ratchets down instead of being grandfathered forever.
pub fn panic_in_library(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "panic-in-library";
    if !ctx.meta.library {
        return;
    }
    let toks = &ctx.tokens;
    let const_ranges = find_const_ranges(toks);
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => {
                i > 0
                    && toks[i - 1].is_punct(".")
                    && toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokKind::Open(Delim::Paren))
            }
            "panic" | "unreachable" => toks.get(i + 1).is_some_and(|n| n.is_punct("!")),
            _ => false,
        };
        if !hit
            || ctx.in_test_code(i)
            || ctx.allowed(RULE, t.line)
            || const_ranges.iter().any(|&(s, e)| i > s && i < e)
        {
            continue;
        }
        out.push(ctx.diag(
            RULE,
            Tier::Warn,
            t,
            format!(
                "`{}` in library code can abort a long measurement run; prefer a Result or \
                 a documented invariant (counted against panic_budget.json)",
                t.text
            ),
        ));
    }
}

/// Token ranges of `const`/`static` item initializers (between the `=`
/// and the terminating `;`): build-time assertions there are legitimate
/// panic sites. `const fn` bodies are runtime code and not included.
fn find_const_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && (t.text == "const" || t.text == "static"))
            || toks.get(i + 1).is_some_and(|n| n.is_ident("fn"))
        {
            i += 1;
            continue;
        }
        // Find the `=` starting the initializer (bail at `;`/`{`: a
        // declaration without one, or something that wasn't an item).
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut eq = None;
        while let Some(n) = toks.get(j) {
            match n.kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Punct if depth == 0 && n.text == "=" => {
                    eq = Some(j);
                    break;
                }
                TokKind::Punct if depth == 0 && n.text == ";" => break,
                _ => {}
            }
            if depth < 0 {
                break;
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i = j + 1;
            continue;
        };
        // Initializer runs to the `;` at depth 0.
        let mut k = eq + 1;
        let mut depth = 0i32;
        while let Some(n) = toks.get(k) {
            match n.kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Punct if depth == 0 && n.text == ";" => break,
                _ => {}
            }
            if depth < 0 {
                break;
            }
            k += 1;
        }
        ranges.push((eq, k));
        i = k + 1;
    }
    ranges
}

/// rule `crate-hygiene` (deny): every crate root (`lib.rs` / `main.rs`)
/// must carry `#![forbid(unsafe_code)]`.
pub fn crate_hygiene(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "crate-hygiene";
    if !ctx.meta.is_crate_root {
        return;
    }
    let toks = &ctx.tokens;
    let has = (0..toks.len()).any(|i| {
        toks[i].is_ident("forbid")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Open(Delim::Paren))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("unsafe_code"))
    });
    if !has {
        out.push(Diagnostic {
            rule: RULE,
            tier: Tier::Deny,
            file: ctx.meta.display_path.clone(),
            line: 1,
            col: 1,
            message: format!(
                "crate root of `{}` lacks `#![forbid(unsafe_code)]`",
                ctx.meta.crate_name
            ),
        });
    }
}
