//! rule `swallowed-error` (deny): error hygiene for the snapshot /
//! network contracts.
//!
//! PR 7's contract is "a corrupt snapshot never panics and never
//! vanishes silently — it falls back with a logged reason". This rule
//! enforces the static half of that contract in library crates:
//! `Result`s whose error type is `StoreError` or `std::io::Error` must
//! not be `.unwrap()`ed / `.expect()`ed (panic on the error path),
//! discarded with `let _ = ..` (silent loss), or neutered with a
//! dropped `.ok()`.
//!
//! Error-type attribution is syntactic but two-layered: calls to
//! functions *defined in the same file* resolve through the parsed
//! [`crate::ast::FnInfo::ret`] signature, and a fixed table of std
//! fs/net/io producers covers the rest. Genuinely fire-and-forget sites
//! (a best-effort UDP reply, a QUIT on a closing SMTP session) carry a
//! written `// ets-lint: allow(swallowed-error): reason` pragma.

use crate::ast::CallInfo;
use crate::lexer::TokKind;
use crate::rules::stmt_start_before;
use crate::{Diagnostic, FileCtx, Tier};
use std::collections::BTreeSet;

const RULE: &str = "swallowed-error";

/// std fs / net / io functions and methods returning `io::Result`.
const IO_FNS: &[&str] = &[
    "write_all",
    "write",
    "write_fmt",
    "flush",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_dir",
    "copy",
    "rename",
    "remove_file",
    "remove_dir_all",
    "create_dir_all",
    "sync_all",
    "sync_data",
    "set_len",
    "metadata",
    "open",
    "create",
    "bind",
    "connect",
    // Bare `send`/`recv` are mpsc channel methods in this workspace, not
    // io; the UDP socket API goes through `send_to`/`recv_from`.
    "send_to",
    "recv_from",
    "shutdown",
    "set_nonblocking",
    "set_read_timeout",
    "set_write_timeout",
];

/// Return-signature fragments (space-joined tokens) marking a local fn
/// as producing one of the guarded error types.
const ERROR_RET_FRAGMENTS: &[&str] = &["StoreError", "io :: Result", "io :: Error"];

pub fn swallowed_error(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.meta.library {
        return;
    }
    let toks = &ctx.tokens;

    // Local fns whose declared return type carries a guarded error.
    let error_fns: BTreeSet<&str> = ctx
        .ast
        .fns
        .iter()
        .filter(|f| ERROR_RET_FRAGMENTS.iter().any(|frag| f.ret.contains(frag)))
        .map(|f| f.name.as_str())
        .collect();

    // Sorted call sites of guarded producers, for range queries.
    let producer_sites: Vec<&CallInfo> = ctx
        .ast
        .calls
        .iter()
        .filter(|c| error_fns.contains(c.callee.as_str()) || IO_FNS.contains(&c.callee.as_str()))
        .collect();
    if producer_sites.is_empty() {
        return;
    }
    let producer_in = |lo: usize, hi: usize| {
        producer_sites
            .iter()
            .find(|c| c.callee_idx >= lo && c.callee_idx < hi)
    };

    // `.unwrap()` / `.expect(..)` / dropped `.ok()` whose statement
    // contains a guarded producer.
    for call in &ctx.ast.calls {
        if !call.method {
            continue;
        }
        let swallow_kind = match call.callee.as_str() {
            "unwrap" | "expect" => "panics on",
            // `.ok()` only swallows when the Option is dropped on the
            // spot; `.ok()?` or a consumed Option is a conversion.
            "ok" if toks.get(call.end).is_some_and(|t| t.is_punct(";")) => "silently discards",
            _ => continue,
        };
        let i = call.callee_idx;
        if ctx.in_test_code(i) || ctx.allowed(RULE, toks[i].line) {
            continue;
        }
        let stmt_start = stmt_start_before(toks, i, 0);
        let Some(producer) = producer_in(stmt_start, i) else {
            continue;
        };
        out.push(ctx.diag(
            RULE,
            Tier::Deny,
            &toks[i],
            format!(
                "`.{}()` {} the `{}` error from `{}`; library code must propagate it \
                 or fall back with a logged reason",
                call.callee,
                swallow_kind,
                error_kind(&error_fns, producer),
                producer.callee
            ),
        ));
    }

    // `let _ = <expr containing a guarded producer>;`
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if !(toks[i].is_ident("let") && toks[i + 1].is_ident("_") && toks[i + 2].is_punct("=")) {
            i += 1;
            continue;
        }
        // Statement runs from the `=` to the `;` at this level.
        let mut end = i + 3;
        let mut depth = 0i32;
        while let Some(t) = toks.get(end) {
            match t.kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Punct if depth == 0 && t.text == ";" => break,
                _ => {}
            }
            if depth < 0 {
                break;
            }
            end += 1;
        }
        if !ctx.in_test_code(i) && !ctx.allowed(RULE, toks[i].line) {
            if let Some(producer) = producer_in(i + 3, end) {
                out.push(ctx.diag(
                    RULE,
                    Tier::Deny,
                    &toks[i],
                    format!(
                        "`let _ =` discards the `{}` error from `{}`; library code must \
                         propagate it or fall back with a logged reason",
                        error_kind(&error_fns, producer),
                        producer.callee
                    ),
                ));
            }
        }
        i = end + 1;
    }
}

fn error_kind(error_fns: &BTreeSet<&str>, producer: &CallInfo) -> &'static str {
    if error_fns.contains(producer.callee.as_str()) {
        "StoreError/io::Error"
    } else {
        "io::Error"
    }
}
