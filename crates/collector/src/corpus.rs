//! Synthetic labeled corpora.
//!
//! Two evaluation datasets back the paper's methodology tables:
//!
//! * an **Enron-like ham corpus** with planted sensitive identifiers and
//!   exact ground-truth labels — Table 2 measures the scrubber against it;
//! * four **spam-evaluation datasets** mirroring TREC, CSDMC, the
//!   SpamAssassin public corpus, and the Untroubled archive — Table 3
//!   measures the spam scorer against them. Their character differs the
//!   way the real corpora do: Untroubled is an all-spam feed full of
//!   terse, token-poor messages (hence the paper's 0.23 recall), while
//!   TREC/CSDMC/SA mix blatant spam with business ham.

use crate::extract::build;
use crate::scrub::SensitiveKind;
use ets_mail::{Message, MessageBuilder};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A labeled email: the message plus ground truth.
#[derive(Debug, Clone)]
pub struct LabeledEmail {
    /// The message.
    pub message: Message,
    /// Whether it is spam.
    pub spam: bool,
    /// Sensitive identifier kinds genuinely present.
    pub sensitive: Vec<SensitiveKind>,
}

/// The four Table-3 dataset profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpamDataset {
    /// TREC-like: 50% spam, mostly blatant.
    Trec,
    /// CSDMC-like: 30% spam, very blatant.
    Csdmc,
    /// SpamAssassin-public-like: 35% spam, blatant.
    SpamAssassin,
    /// Untroubled-like: 100% spam, largely terse and token-poor.
    Untroubled,
}

impl SpamDataset {
    /// Display name as printed in Table 3.
    pub fn name(self) -> &'static str {
        match self {
            SpamDataset::Trec => "TREC",
            SpamDataset::Csdmc => "CSDMC",
            SpamDataset::SpamAssassin => "SpamAssassin",
            SpamDataset::Untroubled => "Untroubled",
        }
    }

    /// (spam share, share of spam that is subtle).
    fn profile(self) -> (f64, f64) {
        match self {
            SpamDataset::Trec => (0.5, 0.25),
            SpamDataset::Csdmc => (0.3, 0.15),
            SpamDataset::SpamAssassin => (0.35, 0.18),
            SpamDataset::Untroubled => (1.0, 0.80),
        }
    }

    /// All four, Table-3 row order.
    pub const ALL: [SpamDataset; 4] = [
        SpamDataset::Trec,
        SpamDataset::Csdmc,
        SpamDataset::SpamAssassin,
        SpamDataset::Untroubled,
    ];
}

const FIRST_NAMES: &[&str] = &[
    "john", "mary", "dave", "susan", "rob", "linda", "barry", "karen", "mike", "nancy", "steve",
    "laura", "paul", "diane", "greg", "ellen",
];
const LAST_NAMES: &[&str] = &[
    "lavorato",
    "delainey",
    "milnthorp",
    "tycholiz",
    "smith",
    "jones",
    "kim",
    "garcia",
    "chen",
    "patel",
    "novak",
    "weber",
];
const HAM_TOPICS: &[&str] = &[
    "Q3 planning meeting",
    "hotel booking for the offsite",
    "draft contract for review",
    "expense report",
    "interview schedule",
    "gas pipeline capacity",
    "board deck comments",
    "trading desk summary",
    "vacation handover notes",
    "customer escalation",
];
const HAM_SENTENCES: &[&str] = &[
    "Can we move the meeting to Thursday afternoon?",
    "Please review the attached draft before Friday.",
    "Book us 3 rooms and make sure that we can have 2 beds in one of the rooms.",
    "The numbers for last quarter look better than expected.",
    "Let me know if the schedule works for everyone.",
    "I will be out of the office next week.",
    "Thanks for the quick turnaround on this.",
    "The counterparty agreed to the revised terms.",
    "Forwarding the notes from this morning's call.",
    "We should loop in legal before signing.",
];
/// Blatant spam bodies, shared with the traffic generator's campaigns.
pub const BLATANT_BODIES_FOR_CAMPAIGNS: &[&str] = BLATANT_SPAM_BODIES;

const BLATANT_SPAM_BODIES: &[&str] = &[
    "Dear friend, CONGRATULATIONS you are the lottery WINNER of one million dollars. Act now and claim your prize, click here http://win.example",
    "Cheap meds online pharmacy viagra cialis pills 100% free shipping click here http://pharm.example http://pharm2.example http://pharm3.example",
    "URGENT wire transfer needed, beneficiary of inheritance from a prince, western union only, risk free",
    "Hot singles in your area xxx adult dating click below http://date.example",
    "Replica watches luxury brands best prices act now limited time http://watch.example",
    "Make money fast work from home earn extra cash no obligation investment opportunity",
    "Your account is suspended, verify your account and confirm your password here http://phish.example",
    "Bitcoin giveaway crypto doubler send 1 BTC receive 2 BTC http://btc.example",
];
const SUBTLE_SPAM_BODIES: &[&str] = &[
    "Hello, your package details have changed. See the attached note for the new delivery schedule.",
    "Hi, following up on the invoice from last month. Please advise on payment status.",
    "Good day, we reviewed your file and everything is ready on our side.",
    "Per your request, the documentation has been updated. Kindly confirm receipt.",
    "Greetings, the quotation you asked for is enclosed. Prices are valid this week.",
    "Dear sir, regarding your recent enquiry, we can offer favourable terms.",
];

/// Generates the Enron-like ham corpus with planted identifiers.
///
/// Roughly `sensitive_rate` of messages carry one or two planted
/// identifiers, whose kinds are returned as ground truth. The mix of
/// kinds mirrors what the paper found in Enron: phones, dates and emails
/// are everywhere; SSNs are vanishingly rare.
pub fn enron_like(n: usize, sensitive_rate: f64, seed: u64) -> Vec<LabeledEmail> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let from_name = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let from_last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        let to_name = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let topic = HAM_TOPICS[rng.gen_range(0..HAM_TOPICS.len())];
        let mut body = String::new();
        for _ in 0..rng.gen_range(2..5) {
            body.push_str(HAM_SENTENCES[rng.gen_range(0..HAM_SENTENCES.len())]);
            body.push('\n');
        }
        let mut sensitive = Vec::new();
        if rng.gen_bool(sensitive_rate) {
            for _ in 0..rng.gen_range(1..3) {
                let (snippet, kind) = planted_identifier(&mut rng);
                body.push_str(&snippet);
                body.push('\n');
                if !sensitive.contains(&kind) {
                    sensitive.push(kind);
                }
            }
        }
        // Dates are pervasive in business mail.
        if rng.gen_bool(0.5) {
            body.push_str(&format!(
                "Let's reconvene on {:02}/{:02}/2016.\n",
                rng.gen_range(1..13),
                rng.gen_range(1..29)
            ));
            if !sensitive.contains(&SensitiveKind::Date) {
                sensitive.push(SensitiveKind::Date);
            }
        }
        let sender_tag = rng.gen_range(0..100_000u32);
        let mut builder = MessageBuilder::new()
            .from(&format!(
                "{from_name}.{from_last}{sender_tag}@mail{}.example",
                sender_tag % 977
            ))
            .expect("valid")
            .to(&format!("{to_name}@enron-like.example"))
            .expect("valid")
            .subject(topic)
            .date("Tue, 7 May 2015 09:00:00 +0000")
            .message_id(&format!("<ham{i}@enron-like.example>"))
            .body(&body);
        if rng.gen_bool(0.15) {
            builder = builder.attach(
                "notes.txt",
                "text/plain",
                b"meeting notes attached".to_vec(),
            );
        }
        out.push(LabeledEmail {
            message: builder.build(),
            spam: false,
            sensitive,
        });
    }
    out
}

fn planted_identifier(rng: &mut ChaCha8Rng) -> (String, SensitiveKind) {
    match rng.gen_range(0..10) {
        0 => {
            // Luhn-valid card: random 15 digits + check digit, Amex-like.
            let card = gen_card(rng, "37", 15);
            (format!("Amex {card} Exp 06/03"), SensitiveKind::CreditCard)
        }
        1 => (
            format!(
                "My SSN is {:03}-{:02}-{:04}",
                rng.gen_range(1..900),
                rng.gen_range(1..99),
                rng.gen_range(1..9999)
            ),
            SensitiveKind::Ssn,
        ),
        2 => (
            format!(
                "company EIN {:02}-{:07}",
                rng.gen_range(10..99),
                rng.gen_range(1..9999999)
            ),
            SensitiveKind::Ein,
        ),
        3 => (
            format!("password: {}", random_token(rng, 8)),
            SensitiveKind::Password,
        ),
        4 => (
            format!(
                "vin 1HGCM{}A{:06}",
                rng.gen_range(10000..99999),
                rng.gen_range(0..999999)
            ),
            SensitiveKind::Vin,
        ),
        5 => (
            format!(
                "username: {}{}",
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                rng.gen_range(10..99)
            ),
            SensitiveKind::Username,
        ),
        6 => (
            format!("Houston, TX {:05}", rng.gen_range(10000..99999)),
            SensitiveKind::Zip,
        ),
        7 => (
            format!("account no. {:08}", rng.gen_range(10000000..99999999u64)),
            SensitiveKind::IdNumber,
        ),
        8 => (
            format!(
                "contact {}@{}.example",
                random_token(rng, 6),
                random_token(rng, 5)
            ),
            SensitiveKind::Email,
        ),
        _ => (
            format!(
                "call me at ({:03}) {:03}-{:04}",
                rng.gen_range(200..999),
                rng.gen_range(200..999),
                rng.gen_range(0..9999)
            ),
            SensitiveKind::Phone,
        ),
    }
}

/// A Luhn-valid card number with the given prefix and total length.
fn gen_card(rng: &mut ChaCha8Rng, prefix: &str, len: usize) -> String {
    let mut digits: Vec<u8> = prefix.bytes().map(|b| b - b'0').collect();
    while digits.len() < len - 1 {
        digits.push(rng.gen_range(0..10));
    }
    // compute check digit
    let mut check = 0u32;
    for (i, &d) in digits.iter().rev().enumerate() {
        let mut v = d as u32;
        if i % 2 == 0 {
            // position of check digit is 0 from right; these are shifted by 1
            v *= 2;
            if v > 9 {
                v -= 9;
            }
        }
        check += v;
    }
    let check_digit = (10 - (check % 10)) % 10;
    digits.push(check_digit as u8);
    digits.iter().map(|d| (d + b'0') as char).collect()
}

fn random_token(rng: &mut ChaCha8Rng, len: usize) -> String {
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26)) as char)
        .collect()
}

/// Generates one of the Table-3 spam-evaluation datasets.
pub fn spam_dataset(dataset: SpamDataset, n: usize, seed: u64) -> Vec<LabeledEmail> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ dataset.name().len() as u64);
    let (spam_share, subtle_share) = dataset.profile();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let spam = rng.gen_bool(spam_share);
        let message = if spam {
            let subtle = rng.gen_bool(subtle_share);
            let body = if subtle {
                SUBTLE_SPAM_BODIES[rng.gen_range(0..SUBTLE_SPAM_BODIES.len())]
            } else {
                BLATANT_SPAM_BODIES[rng.gen_range(0..BLATANT_SPAM_BODIES.len())]
            };
            let mut b = MessageBuilder::new()
                .raw_from(&format!(
                    "bulk{}@{}.example",
                    rng.gen_range(0..50),
                    random_token(&mut rng, 6)
                ))
                .subject(if subtle {
                    "regarding your request"
                } else {
                    "FREE PRIZE WAITING!!!"
                })
                .body(body);
            if !subtle && rng.gen_bool(0.3) {
                b = b.attach(
                    "offer.zip",
                    "application/zip",
                    build::archive("offer.zip", b"x").data,
                );
            }
            if subtle {
                b = b
                    .date("Wed, 8 Jun 2016 00:00:00 +0000")
                    .message_id(&format!("<s{i}@bulk.example>"));
            }
            b.build()
        } else {
            enron_like(1, 0.05, seed.wrapping_add(i as u64))
                .pop()
                .expect("one email")
                .message
        };
        out.push(LabeledEmail {
            message,
            spam,
            sensitive: Vec::new(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub;

    #[test]
    fn enron_like_is_deterministic() {
        let a = enron_like(20, 0.5, 1);
        let b = enron_like(20, 0.5, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.message.body, y.message.body);
            assert_eq!(x.sensitive, y.sensitive);
        }
    }

    #[test]
    fn ground_truth_identifiers_are_present_in_text() {
        // Every labeled kind must actually be recoverable by the scrubber
        // on at least most messages (this is what Table 2 measures).
        let corpus = enron_like(300, 0.6, 2);
        let mut labeled = 0;
        let mut recovered = 0;
        for e in &corpus {
            for k in &e.sensitive {
                labeled += 1;
                if scrub::scrub(&e.message.body).has(*k) {
                    recovered += 1;
                }
            }
        }
        assert!(labeled > 100, "labeled {labeled}");
        let recall = recovered as f64 / labeled as f64;
        assert!(recall > 0.9, "scrubber recovers {recall:.2} of planted ids");
    }

    #[test]
    fn planted_cards_are_luhn_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..50 {
            let card = gen_card(&mut rng, "4", 16);
            let digits: Vec<u8> = card.bytes().map(|b| b - b'0').collect();
            assert!(crate::scrub::luhn_valid(&digits), "{card}");
            assert_eq!(card.len(), 16);
        }
    }

    #[test]
    fn datasets_have_expected_spam_share() {
        for ds in SpamDataset::ALL {
            let corpus = spam_dataset(ds, 400, 3);
            let share = corpus.iter().filter(|e| e.spam).count() as f64 / 400.0;
            let (expected, _) = ds.profile();
            assert!(
                (share - expected).abs() < 0.08,
                "{}: share {share} vs {expected}",
                ds.name()
            );
        }
    }

    #[test]
    fn untroubled_is_all_spam() {
        let corpus = spam_dataset(SpamDataset::Untroubled, 100, 4);
        assert!(corpus.iter().all(|e| e.spam));
    }

    #[test]
    fn ham_in_datasets_is_business_mail() {
        let corpus = spam_dataset(SpamDataset::Trec, 200, 5);
        let ham: Vec<&LabeledEmail> = corpus.iter().filter(|e| !e.spam).collect();
        assert!(!ham.is_empty());
        assert!(ham.iter().all(|e| e.message.from_addr().is_some()));
    }
}
