//! The end-to-end processing pipeline of Figure 2: one entry point that
//! takes a raw received email through tokenization, text extraction,
//! sensitive-information filtering, and encryption into storage records.
//!
//! ```text
//! raw wire message
//!   → tokenize (header / body / attachments)
//!   → extract text from each attachment (incl. simulated OCR)
//!   → scrub every text (HIPAA identifier list, digits zeroed)
//!   → encrypt each part under the offline key
//!   → metadata + sealed parts
//! ```

use crate::crypto::{self, Key, Sealed};
use crate::extract;
use crate::scrub::{self, SensitiveKind};
use ets_mail::Message;
use serde::{Deserialize, Serialize};

/// Metadata kept in the clear (what the paper's logs retained).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredMeta {
    /// Storage id (drives the encryption nonce; unique per record).
    pub record_id: u64,
    /// Sender domain (the address itself is scrubbed).
    pub sender_domain: Option<String>,
    /// Recipient domain.
    pub recipient_domain: Option<String>,
    /// Subject length in characters (the subject text is encrypted).
    pub subject_len: usize,
    /// Attachment filenames' extensions.
    pub attachment_exts: Vec<String>,
    /// Sensitive identifier kinds found anywhere in the email.
    pub sensitive_kinds: Vec<SensitiveKind>,
    /// Content hashes of attachments (for VirusTotal-style lookups).
    pub attachment_hashes: Vec<u64>,
}

/// One fully processed email: clear metadata plus sealed parts.
#[derive(Debug)]
pub struct StoredEmail {
    /// Clear metadata.
    pub meta: StoredMeta,
    /// Encrypted header block.
    pub header: Sealed,
    /// Encrypted scrubbed body.
    pub body: Sealed,
    /// Encrypted scrubbed attachment texts (index-aligned with
    /// `meta.attachment_exts`; unsupported formats store an empty text).
    pub attachments: Vec<Sealed>,
}

/// The pipeline: a storage key plus a record counter.
#[derive(Debug)]
pub struct Pipeline {
    key: Key,
    next_id: u64,
}

impl Pipeline {
    /// Creates a pipeline sealing under `key` (kept on removable storage
    /// in the study; never on the collection server).
    pub fn new(key: Key) -> Self {
        Pipeline { key, next_id: 1 }
    }

    /// Processes one parsed message into a storage record.
    pub fn process(&mut self, msg: &Message) -> StoredEmail {
        let record_id = self.next_id;
        self.next_id += 1;

        // Tokenize: header block, body, attachments.
        let header_text = msg.headers.to_wire();
        let body_scrubbed = scrub::scrub(&msg.body);
        let mut sensitive: Vec<SensitiveKind> = body_scrubbed.kinds();

        let mut attachment_parts = Vec::with_capacity(msg.attachments.len());
        let mut exts = Vec::with_capacity(msg.attachments.len());
        let mut hashes = Vec::with_capacity(msg.attachments.len());
        for (i, a) in msg.attachments.iter().enumerate() {
            exts.push(a.extension().unwrap_or_default());
            hashes.push(a.content_hash());
            let extraction = extract::extract(a);
            let scrubbed = scrub::scrub(extraction.text().unwrap_or(""));
            for k in scrubbed.kinds() {
                if !sensitive.contains(&k) {
                    sensitive.push(k);
                }
            }
            attachment_parts.push(crypto::seal(
                &self.key,
                part_id(record_id, 2 + i as u64),
                scrubbed.text.as_bytes(),
            ));
        }
        sensitive.sort();

        // Headers may themselves carry addresses: scrub before sealing.
        let header_scrubbed = scrub::scrub(&header_text);

        StoredEmail {
            meta: StoredMeta {
                record_id,
                sender_domain: msg.from_addr().map(|a| a.domain().to_owned()),
                recipient_domain: msg.to_addr().map(|a| a.domain().to_owned()),
                subject_len: msg.subject().chars().count(),
                attachment_exts: exts,
                sensitive_kinds: sensitive,
                attachment_hashes: hashes,
            },
            header: crypto::seal(
                &self.key,
                part_id(record_id, 0),
                header_scrubbed.text.as_bytes(),
            ),
            body: crypto::seal(
                &self.key,
                part_id(record_id, 1),
                body_scrubbed.text.as_bytes(),
            ),
            attachments: attachment_parts,
        }
    }

    /// Processes one collected email — the per-email stage a streaming
    /// commit drives. Envelope fields stay out of storage (the paper's
    /// logs retained only message-level metadata), so this is the
    /// message pipeline applied to the collected payload.
    pub fn process_collected(&mut self, email: &crate::infra::CollectedEmail) -> StoredEmail {
        self.process(&email.message)
    }

    /// Decrypts a stored part with the offline key (analysis-time only).
    pub fn open(&self, sealed: &Sealed) -> Result<String, crypto::OpenError> {
        let bytes = crypto::open(&self.key, sealed)?;
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }
}

/// Derives a unique per-part record id: the email id in the high bits,
/// the part index in the low bits — nonces never collide.
fn part_id(record_id: u64, part: u64) -> u64 {
    (record_id << 8) | (part & 0xFF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::build;
    use ets_mail::MessageBuilder;

    fn pipeline() -> Pipeline {
        Pipeline::new([0x11; 32])
    }

    fn sample() -> Message {
        MessageBuilder::new()
            .from("john@business.example")
            .unwrap()
            .to("alice@gmial.com")
            .unwrap()
            .subject("travel receipts")
            .body("Amex 371385129301004 Exp 06/03\nsee attachments")
            .attach(
                "visa.pdf",
                "application/pdf",
                build::pdf("visa.pdf", "passport data, SSN 078-05-1120").data,
            )
            .attach(
                "photo.jpg",
                "image/jpeg",
                build::image("photo.jpg", "").data,
            )
            .build()
    }

    #[test]
    fn metadata_is_clear_and_content_sealed() {
        let mut p = pipeline();
        let stored = p.process(&sample());
        assert_eq!(
            stored.meta.sender_domain.as_deref(),
            Some("business.example")
        );
        assert_eq!(stored.meta.recipient_domain.as_deref(), Some("gmial.com"));
        assert_eq!(stored.meta.attachment_exts, vec!["pdf", "jpg"]);
        assert_eq!(stored.meta.subject_len, "travel receipts".len());
        // Sensitive kinds from body AND attachment text.
        assert!(stored
            .meta
            .sensitive_kinds
            .contains(&SensitiveKind::CreditCard));
        assert!(stored.meta.sensitive_kinds.contains(&SensitiveKind::Ssn));
        // Ciphertext does not contain the card number.
        let as_text = String::from_utf8_lossy(&stored.body.ciphertext);
        assert!(!as_text.contains("371385129301004"));
    }

    #[test]
    fn sealed_parts_decrypt_to_scrubbed_text() {
        let mut p = pipeline();
        let stored = p.process(&sample());
        let body = p.open(&stored.body).unwrap();
        assert!(body.contains("*_|R|_*americanexpress*"));
        assert!(!body.contains("371385129301004"));
        let att = p.open(&stored.attachments[0]).unwrap();
        assert!(att.contains("*_|R|_*ssn*"));
        // image with no OCR text stores empty
        assert_eq!(p.open(&stored.attachments[1]).unwrap(), "");
    }

    #[test]
    fn header_addresses_are_scrubbed() {
        let mut p = pipeline();
        let stored = p.process(&sample());
        let header = p.open(&stored.header).unwrap();
        assert!(!header.contains("john@business.example"));
        assert!(header.contains("*_|R|_*email*"));
    }

    #[test]
    fn record_ids_and_nonces_are_unique() {
        let mut p = pipeline();
        let a = p.process(&sample());
        let b = p.process(&sample());
        assert_ne!(a.meta.record_id, b.meta.record_id);
        assert_ne!(a.body.nonce, b.body.nonce);
        assert_ne!(a.header.nonce, a.body.nonce);
        assert_ne!(a.body.nonce, a.attachments[0].nonce);
    }

    #[test]
    fn wrong_key_cannot_open() {
        let mut p = pipeline();
        let stored = p.process(&sample());
        let other = Pipeline::new([0x22; 32]);
        assert!(other.open(&stored.body).is_err());
    }

    #[test]
    fn attachment_hashes_support_oracle_lookup() {
        let mut p = pipeline();
        let stored = p.process(&sample());
        assert_eq!(stored.meta.attachment_hashes.len(), 2);
        let oracle = ets_ecosystem_oracle_stub(stored.meta.attachment_hashes[0]);
        // the hash is stable across processing runs
        let again = pipeline().process(&sample());
        assert_eq!(stored.meta.attachment_hashes, again.meta.attachment_hashes);
        let _ = oracle;
    }

    // ets-collector cannot depend on ets-ecosystem (dependency direction);
    // this stub just documents that the hash is the lookup key.
    fn ets_ecosystem_oracle_stub(hash: u64) -> u64 {
        hash
    }
}
