//! The workload generator.
//!
//! Produces the seven months of email the study collected, with ground
//! truth attached to every message so the funnel's precision and recall
//! are measurable:
//!
//! * **spam** — campaign-structured (repeated senders and bodies, forged
//!   headers, archive attachments), drowning everything else by orders of
//!   magnitude;
//! * **receiver typos** — unique humans mistyping a recipient domain,
//!   with volumes driven by the Section-6 typing-error model (popular
//!   targets and low-visual-distance typos dominate, Figure 5);
//! * **reflection typos** — service mail (unsubscribe headers, bounce
//!   senders) chasing a mistyped signup address, skewed toward the
//!   disposable-address typo domains;
//! * **SMTP typos** — rare, bursty: one user's outgoing mail arrives at
//!   an SMTP-typo VPS until the user fixes their client (70% single
//!   email, 90% within a week — §4.4.2's persistence numbers).
//!
//! Spam volume is generated at `spam_scale` of the paper's magnitude
//! (118.9M/year does not fit in a unit test); analyses multiply spam-side
//! counts back by `1/spam_scale` when reporting paper-scale projections.
//! True-typo traffic is generated at full scale so the rare-event
//! statistics stay intact.

use crate::extract::build;
use crate::infra::{CollectedEmail, CollectionInfra};
use crate::scrub::SensitiveKind;
use crate::time::{SimDate, STUDY_DAYS};
use ets_core::taxonomy::CollectionPurpose;
use ets_core::typing::TypingModel;
use ets_mail::{EmailAddress, MessageBuilder};
use ets_parallel::{derive_rng, domain as stream, par_map_index};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Ground truth for one generated email.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrueKind {
    /// Spam (of any flavour).
    Spam,
    /// A genuine receiver typo.
    Receiver,
    /// A genuine reflection typo.
    Reflection,
    /// A genuine SMTP typo (outgoing mail intercepted).
    SmtpTypo,
}

/// A generated email with its ground truth.
#[derive(Debug, Clone)]
pub struct GenEmail {
    /// The collected email as the infrastructure saw it.
    pub collected: CollectedEmail,
    /// What it really is.
    pub truth: TrueKind,
    /// Sensitive identifier kinds genuinely present in its text.
    pub sensitive: Vec<SensitiveKind>,
}

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of the paper's spam volume to actually generate.
    pub spam_scale: f64,
    /// Fraction of the paper's true-typo volume to generate (1.0 for
    /// experiments; smaller in quick tests).
    pub typo_scale: f64,
    /// Yearly receiver-typo emails across all domains (paper: ≈4,800 of
    /// the 6,041 receiver+reflection).
    pub receiver_per_year: f64,
    /// Yearly reflection-typo emails (paper: ≈1,200).
    pub reflection_per_year: f64,
    /// Yearly *true* SMTP-typo users (each sends 1–6 emails).
    pub smtp_users_per_year: f64,
    /// Yearly receiver typos arriving at SMTP-typo domains (the paper's
    /// unexplained ≈700/year).
    pub mystery_receiver_per_year: f64,
    /// Exponent sharpening the per-domain receiver-typo weights: real
    /// typo traffic is heavier-tailed than the raw typing model predicts
    /// (two domains took the majority in Figure 5).
    pub concentration: f64,
    /// The paper's total yearly email volume (used to size spam).
    pub paper_total_per_year: f64,
    /// Share of the total that targets SMTP-typo domains (the paper saw
    /// 102.7M of 118.9M there).
    pub smtp_candidate_share: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0x2016_0604,
            spam_scale: 1.0 / 1000.0,
            typo_scale: 1.0,
            receiver_per_year: 4_800.0,
            reflection_per_year: 1_200.0,
            smtp_users_per_year: 260.0,
            mystery_receiver_per_year: 700.0,
            concentration: 2.2,
            paper_total_per_year: 118_894_960.0,
            smtp_candidate_share: 102_661_230.0 / 118_894_960.0,
        }
    }
}

impl TrafficConfig {
    /// A fast configuration for unit tests.
    pub fn test_scale(seed: u64) -> Self {
        TrafficConfig {
            seed,
            spam_scale: 1.0 / 20_000.0,
            ..Default::default()
        }
    }
}

/// The generator.
pub struct TrafficGenerator<'a> {
    infra: &'a CollectionInfra,
    config: TrafficConfig,
    model: TypingModel,
}

/// Weights for Figure 7's attachment extension distribution among true
/// typo emails (extension, relative weight).
const TYPO_ATTACH_EXTS: [(&str, f64); 14] = [
    ("pdf", 45.0),
    ("docx", 16.0),
    ("jpg", 11.0),
    ("doc", 3.3),
    ("jpeg", 3.0),
    ("xlsx", 1.5),
    ("png", 1.0),
    ("xls", 1.1),
    ("txt", 0.5),
    ("html", 0.3),
    ("ics", 0.4),
    ("rtf", 0.2),
    ("pptx", 0.3),
    ("docm", 0.1),
];

/// One-off generation tables, fixed for the whole study period: spam
/// campaigns, SMTP-typo users, receiver weights, and the domain lists.
/// Built once from the `TRAFFIC_SETUP` RNG streams, then shared by every
/// per-day unit — so day streams never shift when the setup's draw count
/// changes, and a streaming consumer pays setup cost exactly once.
pub struct TrafficSetup<'a> {
    weights: Vec<(ets_core::DomainName, f64)>,
    campaigns: Vec<SpamCampaign>,
    smtp_users: Vec<SmtpUser>,
    smtp_domains: Vec<&'a ets_core::taxonomy::StudyDomain>,
    rcv_domains: Vec<&'a ets_core::taxonomy::StudyDomain>,
    smtp_names: Vec<ets_core::DomainName>,
}

/// Bucket bounds for the per-day batch-size histogram
/// (`traffic.day_batch`) — shared by the batch and streaming drivers so
/// both record into the same buckets.
pub(crate) const DAY_BATCH_BOUNDS: [u64; 7] = [0, 8, 16, 32, 64, 128, 256];

impl<'a> TrafficGenerator<'a> {
    /// Creates a generator over the study infrastructure.
    pub fn new(infra: &'a CollectionInfra, config: TrafficConfig) -> Self {
        TrafficGenerator {
            infra,
            config,
            model: TypingModel::default(),
        }
    }

    /// Builds the one-off generation tables from their dedicated
    /// `TRAFFIC_SETUP` streams. Pure: two generators with the same
    /// config build identical setups.
    pub fn setup(&self) -> TrafficSetup<'a> {
        let weights = self.receiver_weights();
        let mut campaign_rng = derive_rng(self.config.seed, stream::TRAFFIC_SETUP, 0);
        let campaigns = self.make_campaigns(&mut campaign_rng);
        let mut users_rng = derive_rng(self.config.seed, stream::TRAFFIC_SETUP, 1);
        let smtp_users = self.make_smtp_users(&mut users_rng);
        // Domain lists are fixed for the whole study period; collect them
        // once here instead of once per simulated day (draws no RNG, so
        // day streams are unaffected).
        let smtp_domains: Vec<&ets_core::taxonomy::StudyDomain> =
            self.infra.smtp_domains().collect();
        let rcv_domains: Vec<&ets_core::taxonomy::StudyDomain> =
            self.infra.receiver_domains().collect();
        let smtp_names: Vec<ets_core::DomainName> =
            smtp_domains.iter().map(|d| d.domain().clone()).collect();
        TrafficSetup {
            weights,
            campaigns,
            smtp_users,
            smtp_domains,
            rcv_domains,
            smtp_names,
        }
    }

    /// Generates one simulated day's batch, in canonical order.
    ///
    /// A pure function of `(config, setup, day)`: the day draws from its
    /// own RNG stream derived from `(seed, TRAFFIC_DAY, day)`, so any
    /// caller — batch fan-out, streaming shard, live replay — produces
    /// identical bytes for the same day. Outage days are empty.
    pub fn day(&self, setup: &TrafficSetup<'a>, day: usize) -> Vec<GenEmail> {
        let date = SimDate(day as u32);
        if self.infra.in_outage(date) {
            return Vec::new();
        }
        let mut rng = derive_rng(self.config.seed, stream::TRAFFIC_DAY, day as u64);
        let mut out = Vec::new();
        self.spam_for_day(
            date,
            &setup.campaigns,
            &setup.smtp_domains,
            &setup.rcv_domains,
            &mut rng,
            &mut out,
        );
        self.receiver_for_day(date, &setup.weights, &mut rng, &mut out);
        self.reflection_for_day(date, &mut rng, &mut out);
        self.smtp_for_day(date, &setup.smtp_users, &mut rng, &mut out);
        self.machine_smtp_for_day(date, &setup.smtp_names, &mut rng, &mut out);
        self.mystery_for_day(date, &setup.smtp_names, &mut rng, &mut out);
        out
    }

    /// Generates the whole study period as one materialized batch.
    ///
    /// Days run data-parallel over [`TrafficGenerator::day`] and per-day
    /// batches are concatenated in calendar order, so the output is
    /// byte-identical for any thread count — and element-identical to
    /// draining [`TrafficGenerator::source`].
    pub fn generate(&self) -> Vec<GenEmail> {
        let mut gen_span = ets_obs::span!("traffic.generate");
        let setup = self.setup();
        let per_day: Vec<Vec<GenEmail>> =
            par_map_index(STUDY_DAYS as usize, |day| self.day(&setup, day));
        // Per-day batch sizes are derived from per-day RNG streams, so the
        // histogram is identical regardless of how days were scheduled.
        for batch in &per_day {
            ets_obs::metrics::histogram_record(
                "traffic.day_batch",
                &DAY_BATCH_BOUNDS,
                batch.len() as u64,
            );
        }
        let mut out = Vec::with_capacity(per_day.iter().map(Vec::len).sum());
        for mut batch in per_day {
            out.append(&mut batch);
        }
        ets_obs::metrics::counter_add("traffic.emails", out.len() as u64);
        gen_span.arg("emails", out.len() as u64);
        out
    }

    /// A lazy day-by-day iterator over the study period: yields exactly
    /// the emails [`TrafficGenerator::generate`] would return, in the
    /// same order, while holding at most one day's batch in memory — the
    /// generator-side event source the streaming pipeline consumes.
    pub fn source(&self) -> TrafficSource<'_, 'a> {
        TrafficSource {
            gen: self,
            setup: self.setup(),
            next_day: 0,
            buffer: std::collections::VecDeque::new(),
        }
    }

    /// Per-domain yearly receiver-typo weights from the typing model,
    /// normalized to `receiver_per_year`.
    pub fn receiver_weights(&self) -> Vec<(ets_core::DomainName, f64)> {
        // Target "email volumes" in arbitrary units; only ratios matter.
        let volume = |target: &str| -> f64 {
            match target {
                "gmail.com" => 10.0,
                "hotmail.com" => 6.0,
                "outlook.com" => 5.5,
                "yahoo.com" => 5.0,
                "comcast.com" => 0.18,
                "verizon.com" => 0.15,
                "zohomail.com" => 0.05,
                "yopmail.com" => 0.04,
                "10minutemail.com" => 0.02,
                "mailchimp.com" => 0.05,
                "sendgrid.com" => 0.04,
                _ => 0.05,
            }
        };
        let mut raw: Vec<(ets_core::DomainName, f64)> = self
            .infra
            .receiver_domains()
            .map(|d| {
                let v = volume(d.candidate.target.as_str());
                let w = self
                    .model
                    .expected_emails(v * 1e9, &d.candidate)
                    .powf(self.config.concentration);
                (d.domain().clone(), w)
            })
            .collect();
        let total: f64 = raw.iter().map(|(_, w)| w).sum();
        let scale = self.config.receiver_per_year / total.max(1e-12);
        for (_, w) in &mut raw {
            *w *= scale;
        }
        raw
    }

    fn poisson(&self, rng: &mut ChaCha8Rng, lambda: f64) -> usize {
        poisson(rng, lambda)
    }

    // --- spam ----------------------------------------------------------

    fn make_campaigns(&self, rng: &mut ChaCha8Rng) -> Vec<SpamCampaign> {
        let n = 40;
        (0..n).map(|i| SpamCampaign::random(i, rng)).collect()
    }

    fn spam_for_day(
        &self,
        date: SimDate,
        campaigns: &[SpamCampaign],
        smtp_domains: &[&ets_core::taxonomy::StudyDomain],
        rcv_domains: &[&ets_core::taxonomy::StudyDomain],
        rng: &mut ChaCha8Rng,
        out: &mut Vec<GenEmail>,
    ) {
        let daily_total = self.config.paper_total_per_year / 365.0 * self.config.spam_scale;
        let smtp_share = self.config.smtp_candidate_share;
        let n = self.poisson(rng, daily_total);
        for _ in 0..n {
            let to_smtp = rng.gen_bool(smtp_share);
            let domain = if to_smtp {
                smtp_domains[rng.gen_range(0..smtp_domains.len())]
            } else {
                rcv_domains[rng.gen_range(0..rcv_domains.len())]
            };
            let campaign = &campaigns[rng.gen_range(0..campaigns.len())];
            let relay_probe = to_smtp && rng.gen_bool(0.98);
            out.push(campaign.emit(domain.domain(), self.infra, date, relay_probe, rng));
        }
    }

    // --- receiver typos --------------------------------------------------

    fn receiver_for_day(
        &self,
        date: SimDate,
        weights: &[(ets_core::DomainName, f64)],
        rng: &mut ChaCha8Rng,
        out: &mut Vec<GenEmail>,
    ) {
        for (domain, yearly) in weights {
            let lambda = yearly / 365.0 * self.config.typo_scale;
            for _ in 0..self.poisson(rng, lambda) {
                out.push(self.one_receiver_typo(domain, date, rng, TrueKind::Receiver));
            }
        }
    }

    fn one_receiver_typo(
        &self,
        domain: &ets_core::DomainName,
        date: SimDate,
        rng: &mut ChaCha8Rng,
        truth: TrueKind,
    ) -> GenEmail {
        let corpus = crate::corpus::enron_like(1, 0.10, rng.gen());
        let labeled = corpus.into_iter().next().expect("one email");
        let mut msg = labeled.message;
        let sender = msg.from_addr().expect("ham has From");
        // Rewrite To: the human meant <local>@target but typed the typo
        // domain.
        let local = format!(
            "{}{}",
            pick(
                rng,
                &["alice", "bob", "carol", "dan", "erin", "frank", "grace", "heidi"]
            ),
            rng.gen_range(0..1000)
        );
        let to = EmailAddress::new(&local, domain.as_str()).expect("valid recipient");
        msg.headers.set("To", to.to_string());
        // The ham corpus occasionally carries its own notes.txt; Figure 7's
        // distribution is drawn explicitly below instead.
        msg.attachments.clear();
        if rng.gen_bool(0.15) {
            let (ext, filename, text) = self.typo_attachment(rng);
            let att = match ext {
                "pdf" => build::pdf(&filename, &text),
                "doc" => build::doc(&filename, &text),
                "docx" | "xlsx" | "pptx" | "docm" | "xls" => build::ooxml(&filename, &text),
                "jpg" | "jpeg" | "png" | "gif" => build::image(&filename, &text),
                _ => build::txt(&filename, &text),
            };
            msg.attachments.push(att);
        }
        GenEmail {
            collected: CollectedEmail {
                domain: domain.clone(),
                vps_ip: self.infra.vps_map[domain],
                date,
                client_helo: format!("mail-out.{}", sender.domain()),
                mail_from: Some(sender),
                rcpt_to: to,
                message: msg,
                smtp_submission: false,
            },
            truth,
            sensitive: labeled.sensitive,
        }
    }

    fn typo_attachment(&self, rng: &mut ChaCha8Rng) -> (&'static str, String, String) {
        let total: f64 = TYPO_ATTACH_EXTS.iter().map(|(_, w)| w).sum();
        let mut pick_w = rng.gen::<f64>() * total;
        let mut ext = "pdf";
        for (e, w) in TYPO_ATTACH_EXTS {
            if pick_w < w {
                ext = e;
                break;
            }
            pick_w -= w;
        }
        let stem = pick(
            rng,
            &[
                "resume",
                "visa-application",
                "scan",
                "invoice",
                "medical-record",
                "itinerary",
                "contract",
                "registration",
            ],
        );
        let text = match stem {
            "resume" => "curriculum vitae, references available".to_owned(),
            "visa-application" => "passport and visa application enclosed".to_owned(),
            "medical-record" => "patient record follow-up".to_owned(),
            _ => "see attached document".to_owned(),
        };
        (ext, format!("{stem}.{ext}"), text)
    }

    // --- reflection typos ------------------------------------------------

    fn reflection_for_day(&self, date: SimDate, rng: &mut ChaCha8Rng, out: &mut Vec<GenEmail>) {
        // Disposable-address typo domains get a 3× share (§4.2.1's
        // hypothesis, confirmed by yopmail's heavy signal in Figure 6).
        let domains: Vec<(&ets_core::taxonomy::StudyDomain, f64)> = self
            .infra
            .receiver_domains()
            .map(|d| {
                let w = match d.purpose {
                    CollectionPurpose::Disposable => 3.0,
                    CollectionPurpose::BulkSender => 1.5,
                    _ => 1.0,
                };
                (d, w)
            })
            .collect();
        let total_w: f64 = domains.iter().map(|(_, w)| w).sum();
        let lambda = self.config.reflection_per_year / 365.0 * self.config.typo_scale;
        for _ in 0..self.poisson(rng, lambda) {
            let mut pick_w = rng.gen::<f64>() * total_w;
            let mut chosen = domains[0].0;
            for (d, w) in &domains {
                if pick_w < *w {
                    chosen = d;
                    break;
                }
                pick_w -= w;
            }
            out.push(self.one_reflection(chosen.domain(), date, rng));
        }
    }

    fn one_reflection(
        &self,
        domain: &ets_core::DomainName,
        date: SimDate,
        rng: &mut ChaCha8Rng,
    ) -> GenEmail {
        let service = pick(
            rng,
            &[
                "jobboard",
                "webshop",
                "newsletter",
                "socialnet",
                "travelsite",
                "bank-alerts",
            ],
        );
        let local = format!("user{}", rng.gen_range(0..500));
        let to = EmailAddress::new(&local, domain.as_str()).expect("valid");
        let mut sensitive = Vec::new();
        let mut body = format!(
            "Welcome to {service}! Your account is ready.\nIf you did not sign up, unsubscribe here: https://{service}.example/unsub\n"
        );
        if rng.gen_bool(0.3) {
            body.push_str(&format!("username: {local}\n"));
            sensitive.push(SensitiveKind::Username);
        }
        if rng.gen_bool(0.15) {
            body.push_str(&format!("password: {}\n", random_token(rng, 8)));
            sensitive.push(SensitiveKind::Password);
        }
        let msg = MessageBuilder::new()
            .raw_from(&format!("{service} <noreply@{service}.example>"))
            .raw_to(&to.to_string())
            .reply_to(&format!("bounce+{local}@{service}.example"))
            .return_path(&format!("bounce@{service}.example"))
            .subject(&format!("Welcome to {service}"))
            .date("Thu, 9 Jun 2016 00:00:00 +0000")
            .message_id(&format!("<r{}@{service}.example>", rng.gen::<u64>()))
            .list_unsubscribe(&format!("<https://{service}.example/unsub>"))
            .body(&body)
            .build();
        GenEmail {
            collected: CollectedEmail {
                domain: domain.clone(),
                vps_ip: self.infra.vps_map[domain],
                date,
                client_helo: format!("out.{service}.example"),
                mail_from: Some(
                    EmailAddress::new("bounce", &format!("{service}.example")).expect("valid"),
                ),
                rcpt_to: to,
                message: msg,
                smtp_submission: false,
            },
            truth: TrueKind::Reflection,
            sensitive,
        }
    }

    // --- SMTP typos --------------------------------------------------------

    fn make_smtp_users(&self, rng: &mut ChaCha8Rng) -> Vec<SmtpUser> {
        let expected =
            self.config.smtp_users_per_year * STUDY_DAYS as f64 / 365.0 * self.config.typo_scale;
        let n = poisson(rng, expected);
        let domains: Vec<ets_core::DomainName> = self
            .infra
            .smtp_domains()
            .map(|d| d.domain().clone())
            .collect();
        (0..n)
            .map(|i| {
                let domain = domains[rng.gen_range(0..domains.len())].clone();
                let start = rng.gen_range(0..STUDY_DAYS);
                // Persistence: 70% one email; most of the rest within a
                // day or a week; a heavy tail up to ~200 days.
                let (n_emails, span_days) = match rng.gen_range(0..100) {
                    0..=69 => (1u32, 0u32),
                    70..=82 => (rng.gen_range(2..4), rng.gen_range(0..1)),
                    83..=89 => (rng.gen_range(2..5), rng.gen_range(1..7)),
                    90..=97 => (rng.gen_range(2..6), rng.gen_range(7..30)),
                    _ => (rng.gen_range(3..8), rng.gen_range(30..209)),
                };
                SmtpUser {
                    id: i,
                    domain,
                    start,
                    n_emails,
                    span_days,
                }
            })
            .collect()
    }

    fn smtp_for_day(
        &self,
        date: SimDate,
        users: &[SmtpUser],
        rng: &mut ChaCha8Rng,
        out: &mut Vec<GenEmail>,
    ) {
        for u in users {
            for k in 0..u.n_emails {
                let send_day = if u.n_emails == 1 {
                    u.start
                } else {
                    u.start + (u.span_days * k) / (u.n_emails - 1).max(1)
                };
                if send_day != date.day() {
                    continue;
                }
                let sender = EmailAddress::new(
                    &format!("customer{}", u.id),
                    &format!("homeisp{}.example", u.id % 50),
                )
                .expect("generated sender is valid");
                let to = EmailAddress::new(
                    pick(rng, &["friend", "boss", "mom", "accountant"]),
                    pick(rng, &["gmail.com", "yahoo.com", "hotmail.com"]),
                )
                .expect("valid");
                let corpus = crate::corpus::enron_like(1, 0.3, rng.gen());
                let labeled = corpus.into_iter().next().expect("one");
                let mut msg = labeled.message;
                msg.headers.set("From", sender.to_string());
                msg.headers.set("To", to.to_string());
                out.push(GenEmail {
                    collected: CollectedEmail {
                        domain: u.domain.clone(),
                        vps_ip: self.infra.vps_map[&u.domain],
                        date,
                        client_helo: format!("[192.0.2.{}]", u.id % 250 + 1),
                        mail_from: Some(sender),
                        rcpt_to: to,
                        message: msg,
                        smtp_submission: true,
                    },
                    truth: TrueKind::SmtpTypo,
                    sensitive: labeled.sensitive,
                });
            }
        }
    }

    // --- automated agents relaying through SMTP-typo domains ---------------

    /// Misconfigured devices and cron jobs that picked up an SMTP-typo
    /// hostname and keep relaying machine mail through it. The paper
    /// found 5,147/yr detected as automated plus 5,555/yr frequency
    /// filtered among SMTP-typo candidates — these are that population.
    fn machine_smtp_for_day(
        &self,
        date: SimDate,
        domains: &[ets_core::DomainName],
        rng: &mut ChaCha8Rng,
        out: &mut Vec<GenEmail>,
    ) {
        // ~8 persistent devices, each a few messages/day: ≈10.5k/yr total.
        for agent in 0..8u32 {
            let lambda = 1.9 * self.config.typo_scale;
            for _ in 0..self.poisson(rng, lambda) {
                let domain = domains[(agent as usize * 7) % domains.len()].clone();
                let sender =
                    EmailAddress::new(&format!("nagios{agent}"), &format!("device{agent}.example"))
                        .expect("valid");
                let to = EmailAddress::new("ops", "monitoring.example").expect("valid");
                let msg = MessageBuilder::new()
                    .raw_from(&sender.to_string())
                    .raw_to(&to.to_string())
                    .subject(&format!("status report device {agent}"))
                    .body(&format!(
                        "automated status report from device {agent}: all services nominal"
                    ))
                    .build();
                out.push(GenEmail {
                    collected: CollectedEmail {
                        domain: domain.clone(),
                        vps_ip: self.infra.vps_map[&domain],
                        date,
                        client_helo: format!("device{agent}.example"),
                        mail_from: Some(sender),
                        rcpt_to: to,
                        message: msg,
                        smtp_submission: true,
                    },
                    truth: TrueKind::Spam,
                    sensitive: Vec::new(),
                });
            }
        }
    }

    // --- the mystery receiver typos on SMTP domains ------------------------

    fn mystery_for_day(
        &self,
        date: SimDate,
        domains: &[ets_core::DomainName],
        rng: &mut ChaCha8Rng,
        out: &mut Vec<GenEmail>,
    ) {
        let lambda = self.config.mystery_receiver_per_year / 365.0 * self.config.typo_scale;
        for _ in 0..self.poisson(rng, lambda) {
            let domain = domains[rng.gen_range(0..domains.len())].clone();
            let mut e = self.one_receiver_typo(&domain, date, rng, TrueKind::Receiver);
            e.collected.smtp_submission = false;
            out.push(e);
        }
    }
}

/// The lazy traffic event stream from [`TrafficGenerator::source`]:
/// generates one day at a time and yields its emails in canonical order.
/// Peak memory is one day's batch, not the study period.
pub struct TrafficSource<'g, 'a> {
    gen: &'g TrafficGenerator<'a>,
    setup: TrafficSetup<'a>,
    next_day: u32,
    buffer: std::collections::VecDeque<GenEmail>,
}

impl TrafficSource<'_, '_> {
    /// The shared setup tables (campaigns, weights, domain lists).
    pub fn setup(&self) -> &TrafficSetup<'_> {
        &self.setup
    }
}

impl Iterator for TrafficSource<'_, '_> {
    type Item = GenEmail;

    fn next(&mut self) -> Option<GenEmail> {
        loop {
            if let Some(email) = self.buffer.pop_front() {
                return Some(email);
            }
            if self.next_day >= STUDY_DAYS {
                return None;
            }
            let batch = self.gen.day(&self.setup, self.next_day as usize);
            self.next_day += 1;
            // Same workload metrics as the batch path, recorded day by
            // day; totals match `generate` exactly.
            ets_obs::metrics::histogram_record(
                "traffic.day_batch",
                &DAY_BATCH_BOUNDS,
                batch.len() as u64,
            );
            ets_obs::metrics::counter_add("traffic.emails", batch.len() as u64);
            self.buffer.extend(batch);
        }
    }
}

#[derive(Debug, Clone)]
struct SmtpUser {
    id: usize,
    domain: ets_core::DomainName,
    start: u32,
    n_emails: u32,
    span_days: u32,
}

/// One spam campaign: a fixed sender/body reused across many sends (the
/// structure Layers 3 and 5 key on). A slice of each campaign's volume is
/// "subtle" — an innocuous-looking body from the same sender that only the
/// collaborative layer can connect to the campaign.
#[derive(Debug, Clone)]
struct SpamCampaign {
    sender: String,
    subject: String,
    body: String,
    subtle_body: String,
    subtle_share: f64,
    forge_recipient_domain: bool,
    attach_archive: bool,
    helo: String,
}

impl SpamCampaign {
    fn random(i: usize, rng: &mut ChaCha8Rng) -> SpamCampaign {
        let blatant = crate::corpus::BLATANT_BODIES_FOR_CAMPAIGNS;
        let body = blatant[rng.gen_range(0..blatant.len())];
        SpamCampaign {
            sender: format!("promo{}@bulk{}.example", i, rng.gen_range(0..20)),
            subject: pick(
                rng,
                &[
                    "FREE PRIZE WAITING!!!",
                    "you won the lottery",
                    "cheap meds today",
                    "URGENT: verify your account",
                    "hot singles near you",
                ],
            )
            .to_owned(),
            body: format!("{body} ref {}", i),
            subtle_body: format!(
                "Hello, please find the requested update in order {} attached to this note.",
                i * 37
            ),
            subtle_share: 0.12,
            forge_recipient_domain: rng.gen_bool(0.15),
            attach_archive: rng.gen_bool(0.2),
            helo: format!("spam-cannon-{}.example", rng.gen_range(0..10)),
        }
    }

    fn emit(
        &self,
        domain: &ets_core::DomainName,
        infra: &CollectionInfra,
        date: SimDate,
        relay_probe: bool,
        rng: &mut ChaCha8Rng,
    ) -> GenEmail {
        // Spam hitting the SMTP-typo domains is mostly open-relay abuse:
        // the envelope recipient is a foreign victim, which is what makes
        // the paper's 102.7M/yr "SMTP typo candidates".
        let to = if relay_probe {
            EmailAddress::new(
                &format!("victim{}", rng.gen_range(0..100_000)),
                pick(rng, &["gmail.com", "yahoo.com", "corporate.example"]),
            )
            .expect("valid")
        } else {
            EmailAddress::new(
                &format!("user{}", rng.gen_range(0..100_000)),
                domain.as_str(),
            )
            .expect("valid")
        };
        let from = if self.forge_recipient_domain {
            // Spammers pose as the recipient's own domain (Layer 1 catches
            // this: we never send mail).
            format!("admin@{domain}")
        } else {
            self.sender.clone()
        };
        // The subtle slice: same sender, clean-looking body — invisible to
        // Layer 2, caught by Layer 3's sender blacklist once any sibling
        // email is flagged.
        let subtle = rng.gen_bool(self.subtle_share);
        let mut b = MessageBuilder::new()
            .raw_from(&from)
            .raw_to(&to.to_string())
            .subject(if subtle {
                "quick update"
            } else {
                &self.subject
            })
            .body(if subtle {
                &self.subtle_body
            } else {
                &self.body
            });
        if self.attach_archive && !subtle {
            b = b.attach(
                "offer.zip",
                "application/zip",
                build::archive("offer.zip", b"payload").data,
            );
        }
        GenEmail {
            collected: CollectedEmail {
                domain: domain.clone(),
                vps_ip: infra.vps_map[domain],
                date,
                client_helo: self.helo.clone(),
                mail_from: Some(
                    EmailAddress::parse(&from)
                        .unwrap_or_else(|_| "x@bulk.example".parse().expect("valid")),
                ),
                rcpt_to: to,
                message: b.build(),
                smtp_submission: relay_probe,
            },
            truth: TrueKind::Spam,
            sensitive: Vec::new(),
        }
    }
}

fn pick<'x, T: ?Sized>(rng: &mut ChaCha8Rng, items: &'x [&'x T]) -> &'x T {
    items[rng.gen_range(0..items.len())]
}

fn random_token(rng: &mut ChaCha8Rng, len: usize) -> String {
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26)) as char)
        .collect()
}

/// Poisson sampling: Knuth for small λ, normal approximation above 30.
pub fn poisson(rng: &mut ChaCha8Rng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation with continuity correction.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return (lambda + lambda.sqrt() * z).round().max(0.0) as usize;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // defensive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(seed: u64) -> (CollectionInfra, Vec<GenEmail>) {
        let infra = CollectionInfra::build();
        let gen = TrafficGenerator::new(&infra, TrafficConfig::test_scale(seed));
        let emails = gen.generate();
        (infra, emails)
    }

    #[test]
    fn deterministic() {
        let (_, a) = generate(1);
        let (_, b) = generate(1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b).take(50) {
            assert_eq!(x.collected.rcpt_to, y.collected.rcpt_to);
            assert_eq!(x.truth, y.truth);
        }
    }

    #[test]
    fn source_iterator_matches_generate() {
        let (infra, batch) = generate(16);
        let gen = TrafficGenerator::new(&infra, TrafficConfig::test_scale(16));
        let streamed: Vec<GenEmail> = gen.source().collect();
        assert_eq!(streamed.len(), batch.len());
        for (a, b) in batch.iter().zip(&streamed) {
            assert_eq!(a.collected.rcpt_to, b.collected.rcpt_to);
            assert_eq!(a.collected.date, b.collected.date);
            assert_eq!(a.collected.message.body, b.collected.message.body);
            assert_eq!(a.truth, b.truth);
        }
    }

    #[test]
    fn spam_dominates() {
        let (_, emails) = generate(2);
        let spam = emails.iter().filter(|e| e.truth == TrueKind::Spam).count();
        let other = emails.len() - spam;
        assert!(
            spam > other / 2 + other / 4,
            "spam {spam} vs other {other} (scaled down 20000×, typos at full scale)"
        );
        assert!(spam > 1000, "spam {spam}");
    }

    #[test]
    fn receiver_typos_concentrate_on_few_domains() {
        let (infra, emails) = generate(3);
        // Figure 5 covers the receiver-purpose domains; the "mystery"
        // receiver typos on SMTP-purpose domains are excluded there.
        let receiver_domains: std::collections::HashSet<&str> = infra
            .receiver_domains()
            .map(|d| d.domain().as_str())
            .collect();
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for e in &emails {
            if e.truth == TrueKind::Receiver
                && receiver_domains.contains(e.collected.domain.as_str())
            {
                *counts.entry(e.collected.domain.as_str()).or_insert(0) += 1;
            }
        }
        let mut sizes: Vec<usize> = counts.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = sizes.iter().sum();
        assert!(total > 1_500, "receiver typos {total}");
        let top2: usize = sizes.iter().take(2).sum();
        assert!(
            top2 * 100 / total >= 45,
            "Figure 5 shape: top-2 domains have {}/{}",
            top2,
            total
        );
        let top12: usize = sizes.iter().take(12).sum();
        assert!(top12 * 100 / total >= 92, "top-12 share {}/{total}", top12);
        // §4.4.2: the best domain is a low-visual-distance FF-1 typo of a
        // top provider.
        let (best, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert!(
            ["outlo0k.com", "ohtlook.com", "ho6mail.com"].contains(best),
            "top domain {best}"
        );
    }

    #[test]
    fn smtp_typos_are_bursty_and_sparse() {
        let (infra, emails) = generate(4);
        let smtp: Vec<&GenEmail> = emails
            .iter()
            .filter(|e| e.truth == TrueKind::SmtpTypo)
            .collect();
        assert!(!smtp.is_empty());
        // An order of magnitude fewer than receiver typos (§4.4.2).
        let receiver = emails
            .iter()
            .filter(|e| e.truth == TrueKind::Receiver)
            .count();
        assert!(
            smtp.len() * 4 < receiver,
            "smtp {} vs receiver {receiver}",
            smtp.len()
        );
        // They land on SMTP-typo domains, flagged as submissions.
        for e in &smtp {
            assert!(e.collected.smtp_submission);
            let sd = infra.study_domain(&e.collected.domain).unwrap();
            assert!(matches!(
                sd.purpose,
                CollectionPurpose::SmtpServer | CollectionPurpose::Financial
            ));
            // Outgoing mail: recipient is NOT one of our domains.
            assert!(infra
                .study_domain(&e.collected.rcpt_to.domain().parse().unwrap())
                .is_none());
        }
    }

    #[test]
    fn reflections_favor_disposable_domains() {
        let (infra, emails) = generate(5);
        let mut disposable = 0usize;
        let mut provider = 0usize;
        let mut n_disposable_domains = 0usize;
        let mut n_provider_domains = 0usize;
        for d in infra.receiver_domains() {
            match d.purpose {
                CollectionPurpose::Disposable => n_disposable_domains += 1,
                CollectionPurpose::Provider => n_provider_domains += 1,
                _ => {}
            }
        }
        for e in &emails {
            if e.truth != TrueKind::Reflection {
                continue;
            }
            let sd = infra.study_domain(&e.collected.domain).unwrap();
            match sd.purpose {
                CollectionPurpose::Disposable => disposable += 1,
                CollectionPurpose::Provider => provider += 1,
                _ => {}
            }
        }
        let per_disposable = disposable as f64 / n_disposable_domains as f64;
        let per_provider = provider as f64 / n_provider_domains as f64;
        assert!(
            per_disposable > per_provider * 1.5,
            "disposable {per_disposable:.1}/domain vs provider {per_provider:.1}/domain"
        );
    }

    #[test]
    fn reflection_mail_is_machine_shaped() {
        let (_, emails) = generate(6);
        let r = emails
            .iter()
            .find(|e| e.truth == TrueKind::Reflection)
            .expect("reflections exist");
        let m = &r.collected.message;
        assert!(m.headers.contains("List-Unsubscribe"));
        assert!(m.body.to_ascii_lowercase().contains("unsubscribe"));
    }

    #[test]
    fn outage_days_are_silent() {
        let (infra, emails) = generate(7);
        for e in &emails {
            assert!(!infra.in_outage(e.collected.date), "email on outage day");
        }
    }

    #[test]
    fn poisson_mean_is_right() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for lambda in [0.5, 3.0, 20.0, 200.0] {
            let n = 3000;
            let total: usize = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "λ={lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn spam_campaigns_repeat_bodies() {
        let (_, emails) = generate(8);
        let mut body_counts: std::collections::HashMap<&str, usize> = Default::default();
        for e in &emails {
            if e.truth == TrueKind::Spam {
                *body_counts
                    .entry(e.collected.message.body.as_str())
                    .or_insert(0) += 1;
            }
        }
        let max = body_counts.values().max().copied().unwrap_or(0);
        assert!(max > 20, "campaign bodies must repeat, max {max}");
    }
}

#[cfg(test)]
mod weight_probe {
    use super::*;
    #[test]
    #[ignore]
    fn print_weights() {
        let infra = crate::infra::CollectionInfra::build();
        let gen = TrafficGenerator::new(&infra, TrafficConfig::default());
        let mut w = gen.receiver_weights();
        w.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let total: f64 = w.iter().map(|(_, x)| x).sum();
        let mut acc = 0.0;
        for (d, x) in &w {
            acc += x;
            println!("{d} {x:.1} {:.3}", acc / total);
        }
    }
}
