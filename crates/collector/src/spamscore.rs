//! The SpamAssassin stand-in (Layer 2, Table 3).
//!
//! A rule-plus-token scorer run in "local mode": no network tests, a
//! default threshold of 5.0, high precision and mediocre recall — the
//! profile Table 3 measures (precision ≈ 0.97–0.98, recall 0.23–0.87
//! depending on the corpus).
//!
//! The production path compiles the token table and the cue strings into
//! one `ets-scan` automaton (built once per process) and scores each
//! message in a single pass over the raw subject and body — no
//! `to_ascii_lowercase` copies, no per-pattern `contains` rescans. The
//! pre-automaton scorer is retained as [`SpamScorer::score_legacy`] for
//! the equivalence suite and the microbenches; the two paths produce
//! byte-identical [`SpamScore`]s (same rules, same fire order, bitwise
//! equal totals).

use ets_mail::Message;
use ets_scan::PatternSet;
use std::sync::OnceLock;

/// The default local-mode threshold.
pub const DEFAULT_THRESHOLD: f64 = 5.0;

/// One fired rule.
#[derive(Debug, Clone, PartialEq)]
pub struct FiredRule {
    /// Rule identifier.
    pub name: &'static str,
    /// Score contribution.
    pub score: f64,
}

/// A scoring verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SpamScore {
    /// Total score.
    pub score: f64,
    /// Rules that fired.
    pub rules: Vec<FiredRule>,
    /// Threshold used.
    pub threshold: f64,
}

impl SpamScore {
    /// Whether the message is classified spam.
    pub fn is_spam(&self) -> bool {
        self.score >= self.threshold
    }
}

/// The scorer. Stateless; configuration is the threshold.
#[derive(Debug, Clone)]
pub struct SpamScorer {
    /// Classification threshold (default 5.0).
    pub threshold: f64,
}

impl Default for SpamScorer {
    fn default() -> Self {
        SpamScorer {
            threshold: DEFAULT_THRESHOLD,
        }
    }
}

/// Token weights: the body vocabulary that pushes a message spamward.
/// Scores are tuned so a typical spam fires several rules past 5.0 while
/// business ham rarely crosses 2.0.
const SPAM_TOKENS: &[(&str, f64)] = &[
    ("viagra", 3.0),
    ("cialis", 3.0),
    ("pharmacy", 1.8),
    ("pills", 1.4),
    ("lottery", 2.2),
    ("winner", 1.2),
    ("congratulations", 0.8),
    ("prize", 1.4),
    ("claim", 0.7),
    ("urgent", 0.9),
    ("wire transfer", 1.6),
    ("western union", 2.0),
    ("inheritance", 1.8),
    ("prince", 1.0),
    ("beneficiary", 1.6),
    ("million dollars", 2.0),
    ("investment opportunity", 1.6),
    ("100% free", 1.8),
    ("risk free", 1.4),
    ("no obligation", 1.2),
    ("act now", 1.3),
    ("limited time", 1.1),
    ("click here", 1.2),
    ("click below", 1.0),
    ("unsubscribe here", 0.4),
    ("cheap meds", 2.4),
    ("weight loss", 1.4),
    ("casino", 1.6),
    ("betting", 1.0),
    ("hot singles", 2.6),
    ("adult", 0.8),
    ("xxx", 1.4),
    ("replica watches", 2.6),
    ("luxury brands", 1.2),
    ("work from home", 1.6),
    ("earn extra cash", 1.8),
    ("make money fast", 2.2),
    ("refinance", 1.0),
    ("low interest", 0.9),
    ("crypto doubler", 2.8),
    ("bitcoin giveaway", 2.8),
    ("dear friend", 1.2),
    ("dear customer", 0.6),
    ("verify your account", 1.5),
    ("suspended account", 1.5),
    ("confirm your password", 1.8),
];

/// Non-token cue strings the rule bodies test for, indexed by the
/// `CUE_*` constants. Compiled into the same automaton as
/// [`SPAM_TOKENS`] so one pass yields every count the rules need.
const CUES: [&str; 10] = [
    "re:", "!", "free", "$$$", "http://", "https://", "urgent", "usd", "$", "<",
];
const CUE_RE: usize = 0;
const CUE_BANG: usize = 1;
const CUE_FREE: usize = 2;
const CUE_DOLLAR3: usize = 3;
const CUE_HTTP: usize = 4;
const CUE_HTTPS: usize = 5;
const CUE_URGENT: usize = 6;
const CUE_USD: usize = 7;
const CUE_DOLLAR: usize = 8;
const CUE_LT: usize = 9;

const N_TOKENS: usize = SPAM_TOKENS.len();
const N_PATTERNS: usize = N_TOKENS + CUES.len();

/// The compiled rule automaton: [`SPAM_TOKENS`] (tags carry the token
/// weights) followed by [`CUES`] (weight 0), built once per process.
fn compiled_rules() -> &'static PatternSet<f64> {
    static SET: OnceLock<PatternSet<f64>> = OnceLock::new();
    SET.get_or_init(|| {
        let mut patterns: Vec<(&str, f64)> = SPAM_TOKENS.to_vec();
        patterns.extend(CUES.iter().map(|c| (*c, 0.0)));
        PatternSet::compile(&patterns)
    })
}

impl SpamScorer {
    /// Creates a scorer with the default threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores a message: one automaton pass over the subject and one
    /// over the body, then the same rule bodies (in the same fire order)
    /// as the legacy scorer, driven off the per-pattern occurrence
    /// counts. Verdicts are byte-identical with
    /// [`SpamScorer::score_legacy`].
    pub fn score(&self, msg: &Message) -> SpamScore {
        let mut rules: Vec<FiredRule> = Vec::new();
        let mut fire = |name: &'static str, score: f64| rules.push(FiredRule { name, score });

        let set = compiled_rules();
        let subject = msg.subject();
        let body = msg.body.as_str();
        let mut subj_hits = [0u32; N_PATTERNS];
        for m in set.find_all(subject) {
            subj_hits[m.pattern] += 1;
        }
        let mut body_hits = [0u32; N_PATTERNS];
        for m in set.find_all(body) {
            body_hits[m.pattern] += 1;
        }
        let cue = |hits: &[u32; N_PATTERNS], c: usize| hits[N_TOKENS + c];

        // Header rules.
        if msg.from_addr().is_none() {
            fire("MISSING_OR_BAD_FROM", 1.2);
        }
        if !msg.headers.contains("Message-ID") {
            fire("MISSING_MSGID", 0.8);
        }
        if !msg.headers.contains("Date") {
            fire("MISSING_DATE", 0.6);
        }
        if let (Some(from), Some(reply)) = (msg.from_addr(), msg.reply_to_addr()) {
            if from.registrable_domain() != reply.registrable_domain() {
                fire("REPLYTO_DIFFERS", 0.7);
            }
        }

        // Subject rules.
        if !subject.is_empty() {
            // The legacy scorer folded the subject before the letter
            // scan, so SUBJ_ALL_CAPS can never fire; the fold is
            // replicated per char here because verdicts must stay
            // byte-identical with the legacy path.
            let mut letters = 0usize;
            let mut all_upper = true;
            for c in subject.chars().filter(char::is_ascii_alphabetic) {
                letters += 1;
                all_upper &= c.to_ascii_lowercase().is_ascii_uppercase();
            }
            if letters >= 8 && all_upper {
                fire("SUBJ_ALL_CAPS", 1.4);
            }
            if cue(&subj_hits, CUE_RE) > 0 && !msg.headers.contains("In-Reply-To") {
                fire("FAKE_REPLY", 0.8);
            }
            if cue(&subj_hits, CUE_BANG) >= 2 {
                fire("SUBJ_EXCLAIM", 0.9);
            }
            if cue(&subj_hits, CUE_FREE) > 0 || cue(&subj_hits, CUE_DOLLAR3) > 0 {
                fire("SUBJ_FREE", 1.0);
            }
        }

        // Body token rules (each token counted once; weights summed in
        // table order so the f64 total matches the legacy loop bitwise).
        let mut token_score = 0.0;
        let mut token_hits = 0;
        for (i, (_tok, w)) in SPAM_TOKENS.iter().enumerate() {
            if body_hits[i] > 0 || subj_hits[i] > 0 {
                token_score += w;
                token_hits += 1;
            }
        }
        if token_hits > 0 {
            fire("BODY_SPAM_TOKENS", token_score);
        }

        // URL density.
        let urls = cue(&body_hits, CUE_HTTP) + cue(&body_hits, CUE_HTTPS);
        if urls >= 3 {
            fire("MANY_URLS", 1.2);
        }
        if cue(&body_hits, CUE_HTTP) > 0 && body.split_whitespace().count() < 12 {
            fire("URL_ONLY_BODY", 1.6);
        }

        // Money amounts with urgency.
        if (cue(&body_hits, CUE_DOLLAR) > 0 || cue(&body_hits, CUE_USD) > 0)
            && cue(&body_hits, CUE_URGENT) > 0
        {
            fire("MONEY_URGENT", 1.3);
        }

        // Attachment rules.
        if msg.has_attachment_ext(&["zip", "rar"]) {
            fire("ARCHIVE_ATTACH", 2.2);
        }
        if msg.has_attachment_ext(&["exe", "scr", "js", "docm", "xlsm"]) {
            fire("EXEC_ATTACH", 2.8);
        }

        // HTML-heavy body with little text.
        if cue(&body_hits, CUE_LT) >= 10 && body.len() < 2000 {
            fire("HTML_HEAVY", 0.9);
        }

        let score = rules.iter().map(|r| r.score).sum();
        SpamScore {
            score,
            rules,
            threshold: self.threshold,
        }
    }

    /// The pre-`ets-scan` scorer: lowercases subject and body, then runs
    /// one `contains` scan per pattern. Retained verbatim as the
    /// reference for the equivalence suite (`tests/scan_equivalence.rs`)
    /// and the `scan_spamscore` microbench.
    pub fn score_legacy(&self, msg: &Message) -> SpamScore {
        let mut rules: Vec<FiredRule> = Vec::new();
        let mut fire = |name: &'static str, score: f64| rules.push(FiredRule { name, score });

        let subject = msg.subject().to_ascii_lowercase();
        let body = msg.body.to_ascii_lowercase();

        // Header rules.
        if msg.from_addr().is_none() {
            fire("MISSING_OR_BAD_FROM", 1.2);
        }
        if !msg.headers.contains("Message-ID") {
            fire("MISSING_MSGID", 0.8);
        }
        if !msg.headers.contains("Date") {
            fire("MISSING_DATE", 0.6);
        }
        if let (Some(from), Some(reply)) = (msg.from_addr(), msg.reply_to_addr()) {
            if from.registrable_domain() != reply.registrable_domain() {
                fire("REPLYTO_DIFFERS", 0.7);
            }
        }

        // Subject rules.
        if !subject.is_empty() {
            let letters: Vec<char> = subject
                .chars()
                .filter(|c| c.is_ascii_alphabetic())
                .collect();
            if letters.len() >= 8 && letters.iter().all(|c| c.is_ascii_uppercase()) {
                fire("SUBJ_ALL_CAPS", 1.4);
            }
            if subject.contains("re:") && !msg.headers.contains("In-Reply-To") {
                fire("FAKE_REPLY", 0.8);
            }
            if subject.contains('!') && subject.matches('!').count() >= 2 {
                fire("SUBJ_EXCLAIM", 0.9);
            }
            if subject.contains("free") || subject.contains("$$$") {
                fire("SUBJ_FREE", 1.0);
            }
        }

        // Body token rules (each token counted once).
        let mut token_score = 0.0;
        let mut token_hits = 0;
        for (tok, w) in SPAM_TOKENS {
            if body.contains(tok) || subject.contains(tok) {
                token_score += w;
                token_hits += 1;
            }
        }
        if token_hits > 0 {
            fire("BODY_SPAM_TOKENS", token_score);
        }

        // URL density.
        let urls = body.matches("http://").count() + body.matches("https://").count();
        if urls >= 3 {
            fire("MANY_URLS", 1.2);
        }
        if body.contains("http://") && body.split_whitespace().count() < 12 {
            fire("URL_ONLY_BODY", 1.6);
        }

        // Money amounts with urgency.
        if (body.contains('$') || body.contains("usd")) && body.contains("urgent") {
            fire("MONEY_URGENT", 1.3);
        }

        // Attachment rules.
        if msg.has_attachment_ext(&["zip", "rar"]) {
            fire("ARCHIVE_ATTACH", 2.2);
        }
        if msg.has_attachment_ext(&["exe", "scr", "js", "docm", "xlsm"]) {
            fire("EXEC_ATTACH", 2.8);
        }

        // HTML-heavy body with little text.
        let tags = body.matches('<').count();
        if tags >= 10 && body.len() < 2000 {
            fire("HTML_HEAVY", 0.9);
        }

        let score = rules.iter().map(|r| r.score).sum();
        SpamScore {
            score,
            rules,
            threshold: self.threshold,
        }
    }

    /// Convenience: classify directly.
    pub fn is_spam(&self, msg: &Message) -> bool {
        self.score(msg).is_spam()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ets_mail::MessageBuilder;

    fn ham() -> Message {
        MessageBuilder::new()
            .from("alice@gmail.com")
            .unwrap()
            .to("bob@partner.com")
            .unwrap()
            .subject("Q3 planning meeting")
            .date("Mon, 4 Jun 2016 10:00:00 +0000")
            .message_id("<abc@gmail.com>")
            .body("Hi Bob,\n\nCan we move the Q3 planning meeting to Thursday? I attached the agenda.\n\nBest,\nAlice")
            .build()
    }

    fn blatant_spam() -> Message {
        MessageBuilder::new()
            .raw_from("winner dept")
            .subject("CONGRATULATIONS WINNER!!!")
            .body("Dear friend, you are the lottery WINNER of one million dollars. Act now, claim your prize, click here http://scam.example http://scam2.example http://scam3.example")
            .build()
    }

    #[test]
    fn ham_scores_low() {
        let s = SpamScorer::new().score(&ham());
        assert!(!s.is_spam(), "ham fired {:?}", s.rules);
        assert!(s.score < 2.0);
    }

    #[test]
    fn blatant_spam_scores_high() {
        let s = SpamScorer::new().score(&blatant_spam());
        assert!(s.is_spam(), "only scored {} {:?}", s.score, s.rules);
        assert!(s.score > 7.0);
    }

    #[test]
    fn subtle_spam_is_missed() {
        // The recall gap of Table 3: a terse, clean-looking spam slips by.
        let subtle = MessageBuilder::new()
            .from("newsletter@deals.example")
            .unwrap()
            .to("victim@gmial.com")
            .unwrap()
            .subject("your order update")
            .date("x")
            .message_id("<m@deals.example>")
            .body(
                "Hello, your package details have changed. See attached note for the new schedule.",
            )
            .build();
        assert!(!SpamScorer::new().is_spam(&subtle));
    }

    #[test]
    fn archive_attachment_is_heavy_signal() {
        let mut m = ham();
        m.attachments.push(ets_mail::Attachment::new(
            "invoice.zip",
            "application/zip",
            vec![0x50, 0x4b],
        ));
        let s = SpamScorer::new().score(&m);
        assert!(s.rules.iter().any(|r| r.name == "ARCHIVE_ATTACH"));
    }

    #[test]
    fn rules_sum_to_score() {
        let s = SpamScorer::new().score(&blatant_spam());
        let sum: f64 = s.rules.iter().map(|r| r.score).sum();
        assert!((sum - s.score).abs() < 1e-9);
    }

    #[test]
    fn threshold_is_respected() {
        let lenient = SpamScorer { threshold: 100.0 };
        assert!(!lenient.is_spam(&blatant_spam()));
        let strict = SpamScorer { threshold: 0.5 };
        assert!(strict.is_spam(&blatant_spam()));
    }

    #[test]
    fn scan_path_matches_legacy_exactly() {
        let mut messages = vec![ham(), blatant_spam(), Message::new()];
        let mut zip = ham();
        zip.attachments.push(ets_mail::Attachment::new(
            "invoice.zip",
            "application/zip",
            vec![0x50, 0x4b],
        ));
        messages.push(zip);
        let scorer = SpamScorer::new();
        for m in &messages {
            let new = scorer.score(m);
            let legacy = scorer.score_legacy(m);
            assert_eq!(new.rules, legacy.rules);
            assert_eq!(new.score.to_bits(), legacy.score.to_bits());
        }
    }

    #[test]
    fn empty_message_not_spam() {
        let m = Message::new();
        let s = SpamScorer::new().score(&m);
        // fires missing-headers rules but stays under threshold
        assert!(!s.is_spam(), "{:?}", s.rules);
    }
}
