//! The streaming collection driver: traffic → features → funnel in
//! bounded memory.
//!
//! The batch path materializes the whole study period before the funnel
//! runs — an O(total-emails) memory term that caps the study size. This
//! module replays the same computation as a stream over simulated days:
//! each day is one work unit fanned out through
//! [`ets_parallel::stream_map`] (bounded channels, reorder-commit), and
//! the commit side — running strictly sequentially, in calendar order —
//! absorbs the day's [`FeatureBatch`] into an incremental
//! [`StreamFunnel`] and hands the day's emails to an [`EmailSink`].
//!
//! Determinism argument, layer by layer: a day's emails are a pure
//! function of `(config, day)` (per-day RNG streams); feature extraction
//! is a pure per-email function; the reorder buffer replays day batches
//! in calendar order, so the sink and the feature sequence match the
//! batch path exactly; and the funnel's cross-email state merges by
//! commutative addition, so epoch grouping cannot change a frequency
//! count. [`Funnel::finish`] then sees identical inputs — identical
//! verdicts, identical bytes downstream, at any thread count or channel
//! depth. `tests/streaming_differential.rs` holds this equivalence as a
//! differential oracle.
//!
//! Peak payload memory is O(workers × channel-depth × day-batch) —
//! measured, not claimed: workers register each day's payload bytes with
//! [`ets_obs::mem`] when generated and release them at commit.

use crate::funnel::{EmailFeatures, FeatureBatch, Funnel, FunnelState, FunnelVerdict};
use crate::infra::CollectedEmail;
use crate::pipeline::{Pipeline, StoredEmail};
use crate::time::STUDY_DAYS;
use crate::traffic::{GenEmail, TrafficGenerator, DAY_BATCH_BOUNDS};

/// Where committed emails go once classified features are absorbed —
/// storage, analysis buffers, or nothing at all.
pub trait EmailSink {
    /// Receives one email, in canonical (calendar) order.
    fn accept(&mut self, email: GenEmail);
}

/// Any `FnMut(GenEmail)` closure is a sink.
impl<F: FnMut(GenEmail)> EmailSink for F {
    fn accept(&mut self, email: GenEmail) {
        self(email)
    }
}

/// A sink that seals every committed email into storage records through
/// the Figure-2 pipeline — the shape the live SMTP ingest loop will use.
pub struct StoreSink<'p> {
    pipeline: &'p mut Pipeline,
    /// Sealed records, in commit order.
    pub stored: Vec<StoredEmail>,
}

impl<'p> StoreSink<'p> {
    /// Wraps a storage pipeline.
    pub fn new(pipeline: &'p mut Pipeline) -> StoreSink<'p> {
        StoreSink {
            pipeline,
            stored: Vec::new(),
        }
    }
}

impl EmailSink for StoreSink<'_> {
    fn accept(&mut self, email: GenEmail) {
        self.stored
            .push(self.pipeline.process_collected(&email.collected));
    }
}

/// The incremental funnel: absorbs per-epoch [`FeatureBatch`]es in
/// canonical order, merging their frequency accumulators, and runs the
/// corpus-level layers once the stream ends. Absorbing N single-email
/// batches, one batch of N, or any epoch grouping in between yields
/// identical verdicts — the property the proptest in
/// `tests/streaming_differential.rs` exercises.
pub struct StreamFunnel<'f, 'a> {
    funnel: &'f Funnel<'a>,
    feats: Vec<EmailFeatures>,
    freq: FunnelState,
}

impl<'f, 'a> StreamFunnel<'f, 'a> {
    /// An empty incremental funnel.
    pub fn new(funnel: &'f Funnel<'a>) -> StreamFunnel<'f, 'a> {
        StreamFunnel {
            funnel,
            feats: Vec::new(),
            freq: FunnelState::new(),
        }
    }

    /// Absorbs one epoch's features and counts, in stream order.
    pub fn absorb(&mut self, batch: FeatureBatch) {
        ets_obs::metrics::counter_add("funnel.emails", batch.feats.len() as u64);
        let scan_bytes: u64 = batch.feats.iter().map(|f| f.body_bytes).sum();
        ets_obs::metrics::counter_add("funnel.scan.bytes", scan_bytes);
        // ets-lint: allow(non-commutative-merge): the reorder buffer commits
        // epochs in canonical order, so this append is order-stable.
        self.feats.extend(batch.feats);
        self.freq.merge(batch.freq);
    }

    /// Absorbs a single email (epoch of one).
    pub fn push(&mut self, email: &CollectedEmail) {
        self.absorb(self.funnel.feature_batch(std::iter::once(email)));
    }

    /// Emails absorbed so far.
    pub fn emails(&self) -> usize {
        self.feats.len()
    }

    /// Runs layers 3–5 over everything absorbed, consuming the state.
    pub fn finish(self) -> Vec<FunnelVerdict> {
        self.funnel.finish(&self.feats, &self.freq)
    }
}

/// Streams the whole study period: generates each day's traffic on a
/// worker, extracts its [`FeatureBatch`] there too, then commits days in
/// calendar order — absorbing features into the returned [`StreamFunnel`]
/// and handing emails to `sink`. Call [`StreamFunnel::finish`] on the
/// result for the verdicts.
///
/// Byte-identical to `generate()` + `classify_all()` at any thread count
/// or channel depth; peak payload memory is bounded by the channel
/// geometry, not the study size (tracked via [`ets_obs::mem`]).
pub fn stream_collect<'f, 'a>(
    gen: &TrafficGenerator<'a>,
    funnel: &'f Funnel<'a>,
    sink: &mut impl EmailSink,
) -> StreamFunnel<'f, 'a> {
    let mut span = ets_obs::span!("stream.collect");
    let setup = gen.setup();
    let mut state = StreamFunnel::new(funnel);
    let mut total = 0u64;
    ets_parallel::stream_map(
        0..STUDY_DAYS as usize,
        |_, day| {
            let emails = gen.day(&setup, day);
            let bytes: u64 = emails.iter().map(|e| e.collected.approx_heap_bytes()).sum();
            ets_obs::mem::add(bytes);
            let batch = funnel.feature_batch(emails.iter().map(|e| &e.collected));
            (emails, batch, bytes)
        },
        |_, (emails, batch, bytes)| {
            // Same workload metrics as the batch path, recorded at commit
            // time so they land in calendar order.
            ets_obs::metrics::histogram_record(
                "traffic.day_batch",
                &DAY_BATCH_BOUNDS,
                emails.len() as u64,
            );
            total += emails.len() as u64;
            state.absorb(batch);
            for email in emails {
                sink.accept(email);
            }
            ets_obs::mem::sub(bytes);
        },
    );
    ets_obs::metrics::counter_add("traffic.emails", total);
    span.arg("emails", total);
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infra::CollectionInfra;
    use crate::traffic::TrafficConfig;

    #[test]
    fn streaming_matches_batch_oracle() {
        let infra = CollectionInfra::build();
        let config = TrafficConfig::test_scale(21);
        let gen = TrafficGenerator::new(&infra, config.clone());
        let funnel = Funnel::new(&infra);

        let batch_emails = gen.generate();
        let batch_collected: Vec<CollectedEmail> =
            batch_emails.iter().map(|e| e.collected.clone()).collect();
        let batch_verdicts = funnel.classify_all(&batch_collected);

        let mut streamed: Vec<GenEmail> = Vec::new();
        let mut sink = |e: GenEmail| streamed.push(e);
        let state = stream_collect(&gen, &funnel, &mut sink);
        assert_eq!(state.emails(), batch_collected.len());
        let stream_verdicts = state.finish();

        assert_eq!(stream_verdicts, batch_verdicts);
        assert_eq!(streamed.len(), batch_emails.len());
        for (a, b) in batch_emails.iter().zip(&streamed) {
            assert_eq!(a.collected, b.collected);
            assert_eq!(a.truth, b.truth);
        }
    }

    #[test]
    fn incremental_push_matches_classify_all() {
        let infra = CollectionInfra::build();
        let gen = TrafficGenerator::new(&infra, TrafficConfig::test_scale(22));
        let funnel = Funnel::new(&infra);
        let collected: Vec<CollectedEmail> = gen
            .generate()
            .into_iter()
            .take(400)
            .map(|e| e.collected)
            .collect();
        let mut state = StreamFunnel::new(&funnel);
        for e in &collected {
            state.push(e);
        }
        assert_eq!(state.finish(), funnel.classify_all(&collected));
    }

    #[test]
    fn store_sink_seals_in_commit_order() {
        let infra = CollectionInfra::build();
        let gen = TrafficGenerator::new(&infra, TrafficConfig::test_scale(23));
        let funnel = Funnel::new(&infra);
        let mut pipeline = Pipeline::new([0x42; 32]);
        let mut sink = StoreSink::new(&mut pipeline);
        let state = stream_collect(&gen, &funnel, &mut sink);
        assert_eq!(sink.stored.len(), state.emails());
        assert!(sink
            .stored
            .iter()
            .enumerate()
            .all(|(i, s)| s.meta.record_id == i as u64 + 1));
    }
}
