//! Storage encryption: ChaCha20 (RFC 8439) implemented from scratch.
//!
//! The study encrypts every stored email part with a key kept off the
//! collection server (§4.1). The pipeline reproduces that step with
//! ChaCha20, verified against the RFC 8439 test vectors; a keyed
//! Poly1305-free integrity tag is added as a simple length+checksum guard
//! (the threat model is accidental disclosure, not active tampering —
//! matching the paper's).

/// A 256-bit key.
pub type Key = [u8; 32];

/// A 96-bit nonce.
pub type Nonce = [u8; 12];

/// The ChaCha20 quarter round.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One 64-byte keystream block for (key, nonce, counter).
pub fn chacha20_block(key: &Key, nonce: &Nonce, counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
    }
    let mut working = state;
    for _ in 0..10 {
        // column rounds
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // diagonal rounds
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encrypts/decrypts in place (XOR keystream starting at block counter 1,
/// as RFC 8439 §2.4 does for AEAD payloads).
pub fn chacha20_xor(key: &Key, nonce: &Nonce, data: &mut [u8]) {
    for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
        let ks = chacha20_block(key, nonce, 1 + block_idx as u32);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// An encrypted record: nonce + ciphertext + a plaintext checksum used to
/// detect key mismatch or corruption on decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sealed {
    /// Per-record nonce.
    pub nonce: Nonce,
    /// Ciphertext.
    pub ciphertext: Vec<u8>,
    /// FNV checksum of the plaintext.
    pub checksum: u64,
}

/// Errors from [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenError {
    /// The checksum did not match (wrong key or corrupted record).
    ChecksumMismatch,
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checksum mismatch (wrong key or corrupted ciphertext)")
    }
}

impl std::error::Error for OpenError {}

/// Seals a plaintext under `key` with a deterministic per-record nonce
/// derived from a record id (the pipeline uses the email's storage id; a
/// key/nonce pair is never reused because storage ids are unique).
pub fn seal(key: &Key, record_id: u64, plaintext: &[u8]) -> Sealed {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&record_id.to_le_bytes());
    nonce[8..].copy_from_slice(&0xE75_2017u32.to_le_bytes());
    let checksum = fnv64(plaintext);
    let mut ciphertext = plaintext.to_vec();
    chacha20_xor(key, &nonce, &mut ciphertext);
    Sealed {
        nonce,
        ciphertext,
        checksum,
    }
}

/// Opens a sealed record.
pub fn open(key: &Key, sealed: &Sealed) -> Result<Vec<u8>, OpenError> {
    let mut plaintext = sealed.ciphertext.clone();
    chacha20_xor(key, &sealed.nonce, &mut plaintext);
    if fnv64(&plaintext) != sealed.checksum {
        return Err(OpenError::ChecksumMismatch);
    }
    Ok(plaintext)
}

fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// RFC 8439 §2.3.2 test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: Key = core::array::from_fn(|i| i as u8);
        let nonce: Nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, &nonce, 1);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(block, expected);
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let key: Key = core::array::from_fn(|i| i as u8);
        let nonce: Nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        chacha20_xor(&key, &nonce, &mut data);
        let expected_start: [u8; 16] = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        assert_eq!(&data[..16], &expected_start);
        let expected_end: [u8; 8] = [0x8e, 0xed, 0xf2, 0x78, 0x5e, 0x42, 0x87, 0x4d];
        assert_eq!(&data[data.len() - 8..], &expected_end);
    }

    #[test]
    fn xor_is_involutive() {
        let key: Key = [7u8; 32];
        let nonce: Nonce = [3u8; 12];
        let mut data = b"the quick brown fox".to_vec();
        chacha20_xor(&key, &nonce, &mut data);
        assert_ne!(&data, b"the quick brown fox");
        chacha20_xor(&key, &nonce, &mut data);
        assert_eq!(&data, b"the quick brown fox");
    }

    #[test]
    fn seal_open_round_trip() {
        let key: Key = [9u8; 32];
        let sealed = seal(&key, 12345, b"sensitive email body");
        assert_eq!(open(&key, &sealed).unwrap(), b"sensitive email body");
    }

    #[test]
    fn wrong_key_detected() {
        let key: Key = [9u8; 32];
        let other: Key = [10u8; 32];
        let sealed = seal(&key, 1, b"secret");
        assert_eq!(open(&other, &sealed), Err(OpenError::ChecksumMismatch));
    }

    #[test]
    fn corruption_detected() {
        let key: Key = [9u8; 32];
        let mut sealed = seal(&key, 1, b"secret secret secret");
        sealed.ciphertext[3] ^= 0x40;
        assert_eq!(open(&key, &sealed), Err(OpenError::ChecksumMismatch));
    }

    #[test]
    fn distinct_records_use_distinct_nonces() {
        let key: Key = [1u8; 32];
        let a = seal(&key, 1, b"same plaintext");
        let b = seal(&key, 2, b"same plaintext");
        assert_ne!(a.nonce, b.nonce);
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    proptest! {
        #[test]
        fn arbitrary_round_trip(data: Vec<u8>, id: u64) {
            let key: Key = [0xAB; 32];
            let sealed = seal(&key, id, &data);
            prop_assert_eq!(open(&key, &sealed).unwrap(), data);
        }

        #[test]
        fn ciphertext_differs_from_plaintext(data in proptest::collection::vec(any::<u8>(), 16..256)) {
            let key: Key = [0xCD; 32];
            let sealed = seal(&key, 7, &data);
            prop_assert_ne!(sealed.ciphertext, data);
        }
    }
}
