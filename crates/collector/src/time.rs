//! The simulated study clock.
//!
//! The collection ran June 4 2016 – January 15 2017 (226 days). Dates are
//! day indices from the study epoch; a tiny proleptic-Gregorian converter
//! renders them as `y/m/d` for the figures, matching the paper's axes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The study epoch: June 4, 2016.
pub const EPOCH: (i32, u32, u32) = (2016, 6, 4);

/// Last day of collection: January 15, 2017 (inclusive).
pub const STUDY_DAYS: u32 = 226;

/// A day in simulation time: `0` = June 4 2016.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SimDate(pub u32);

impl SimDate {
    /// The study epoch.
    pub fn epoch() -> SimDate {
        SimDate(0)
    }

    /// Last collection day.
    pub fn study_end() -> SimDate {
        SimDate(STUDY_DAYS - 1)
    }

    /// Days since epoch.
    pub fn day(self) -> u32 {
        self.0
    }

    /// Offsets by whole days (saturating at epoch).
    pub fn plus_days(self, d: i64) -> SimDate {
        let v = self.0 as i64 + d;
        SimDate(v.max(0) as u32)
    }

    /// Days between two dates (`self - other`).
    pub fn days_since(self, other: SimDate) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Civil (year, month, day) of this sim date.
    pub fn civil(self) -> (i32, u32, u32) {
        let epoch_days = days_from_civil(EPOCH.0, EPOCH.1, EPOCH.2);
        civil_from_days(epoch_days + self.0 as i64)
    }

    /// Builds a SimDate from a civil date; `None` if before the epoch.
    pub fn from_civil(y: i32, m: u32, d: u32) -> Option<SimDate> {
        let delta = days_from_civil(y, m, d) - days_from_civil(EPOCH.0, EPOCH.1, EPOCH.2);
        if delta < 0 {
            None
        } else {
            Some(SimDate(delta as u32))
        }
    }

    /// Whether the date falls inside the collection window.
    pub fn in_study(self) -> bool {
        self.0 < STUDY_DAYS
    }
}

impl fmt::Display for SimDate {
    /// Formats as the figures' axis labels: `16/06/04`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.civil();
        write!(f, "{:02}/{:02}/{:02}", y % 100, m, d)
    }
}

/// Days from 1970-01-01 to the given civil date
/// (Howard Hinnant's `days_from_civil` algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((m as i64) + 9) % 12;
    let doy = (153 * mp + 2) / 5 + (d as i64) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (inverse of `days_from_civil`).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_renders_correctly() {
        assert_eq!(SimDate::epoch().to_string(), "16/06/04");
        assert_eq!(SimDate::epoch().civil(), (2016, 6, 4));
    }

    #[test]
    fn study_end_is_january_15() {
        assert_eq!(SimDate::study_end().civil(), (2017, 1, 15));
        assert_eq!(SimDate::study_end().to_string(), "17/01/15");
    }

    #[test]
    fn civil_round_trips() {
        for day in 0..400 {
            let d = SimDate(day);
            let (y, m, dd) = d.civil();
            assert_eq!(SimDate::from_civil(y, m, dd), Some(d));
        }
    }

    #[test]
    fn month_boundaries() {
        // June has 30 days: day 26 is June 30, day 27 is July 1.
        assert_eq!(SimDate(26).civil(), (2016, 6, 30));
        assert_eq!(SimDate(27).civil(), (2016, 7, 1));
        // 2016 is a leap year but we start after February; check new year.
        assert_eq!(
            SimDate::from_civil(2016, 12, 31)
                .unwrap()
                .plus_days(1)
                .civil(),
            (2017, 1, 1)
        );
    }

    #[test]
    fn arithmetic() {
        let d = SimDate(10);
        assert_eq!(d.plus_days(5), SimDate(15));
        assert_eq!(d.plus_days(-20), SimDate(0), "saturates at epoch");
        assert_eq!(SimDate(15).days_since(SimDate(10)), 5);
        assert_eq!(SimDate(10).days_since(SimDate(15)), -5);
    }

    #[test]
    fn study_window() {
        assert!(SimDate::epoch().in_study());
        assert!(SimDate::study_end().in_study());
        assert!(!SimDate(STUDY_DAYS).in_study());
    }

    #[test]
    fn before_epoch_rejected() {
        assert_eq!(SimDate::from_civil(2016, 6, 3), None);
        assert!(SimDate::from_civil(2016, 6, 5).is_some());
    }
}
