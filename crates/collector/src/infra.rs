//! The collection infrastructure of §4.2 (Figure 1).
//!
//! 76 typo domains, each assigned its own virtual private server (a
//! one-to-one domain → IP mapping, because SMTP-typo senders never name
//! the domain — only the IP identifies which typo was made), wildcard
//! MX/A zones per Table 1, and a central collection server running the
//! catch-all policy. Collection windows differ per domain (outages), so
//! analysis normalizes by actual collection days.

use crate::time::{SimDate, STUDY_DAYS};
use ets_core::taxonomy::{CollectionPurpose, StudyDomain};
use ets_core::typogen::{self, TypoCandidate};
use ets_core::DomainName;
use ets_dns::registry::{Registration, Registry};
use ets_dns::whois::WhoisRecord;
use ets_dns::zone::Zone;
use ets_dns::Fqdn;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The 27 provider-typo domains of Figure 5, with their targets.
pub const PROVIDER_TYPOS: [(&str, &str); 27] = [
    ("ohtlook.com", "outlook.com"),
    ("outlo0k.com", "outlook.com"),
    ("hovmail.com", "hotmail.com"),
    ("gmaiql.com", "gmail.com"),
    ("outmook.com", "outlook.com"),
    ("ho6mail.com", "hotmail.com"),
    ("ouulook.com", "outlook.com"),
    ("oetlook.com", "outlook.com"),
    ("ouvlook.com", "outlook.com"),
    ("o7tlook.com", "outlook.com"),
    ("zohomil.com", "zohomail.com"),
    ("verizo0n.com", "verizon.com"),
    ("comcasu.com", "comcast.com"),
    ("comcas5.com", "comcast.com"),
    ("comaast.com", "comcast.com"),
    ("coicast.com", "comcast.com"),
    ("ou6look.com", "outlook.com"),
    ("verhzon.com", "verizon.com"),
    ("comcawst.com", "comcast.com"),
    ("comca3t.com", "comcast.com"),
    ("evrizon.com", "verizon.com"),
    ("gmai-l.com", "gmail.com"),
    ("ve5izon.com", "verizon.com"),
    ("vebizon.com", "verizon.com"),
    ("vepizon.com", "verizon.com"),
    ("vermzon.com", "verizon.com"),
    ("zohomial.com", "zohomail.com"),
];

/// Disposable-address and bulk-sender typos (the other 4 receiver-typo
/// domains; 27 + 4 = the 31 of §4.4.2).
pub const SPECIAL_TYPOS: [(&str, &str, CollectionPurpose); 4] = [
    ("yopail.com", "yopmail.com", CollectionPurpose::Disposable),
    (
        "10minutemil.com",
        "10minutemail.com",
        CollectionPurpose::Disposable,
    ),
    (
        "mailchomp.com",
        "mailchimp.com",
        CollectionPurpose::BulkSender,
    ),
    (
        "sendgrit.com",
        "sendgrid.com",
        CollectionPurpose::BulkSender,
    ),
];

/// SMTP-typo domains: typos of ISP SMTP host names (AT&T, Comcast, Cox,
/// TWC, Verizon), big providers' SMTP subdomains, and the financial
/// domains (PayPal, Chase). 45 domains; 31 + 45 = 76 total.
pub const SMTP_TYPOS: [(&str, &str); 45] = [
    ("smtpverizon.net", "smtp.verizon.net"),
    ("smtpverison.net", "smtp.verizon.net"),
    ("smttpverizon.net", "smtp.verizon.net"),
    ("smtpverizzon.net", "smtp.verizon.net"),
    ("smtpveriizon.net", "smtp.verizon.net"),
    ("mx4hotmail.com", "mx4.hotmail.com"),
    ("mx3hotmail.com", "mx3.hotmail.com"),
    ("mx1hotmail.com", "mx1.hotmail.com"),
    ("smtphotmial.com", "smtp.hotmail.com"),
    ("smtpgmial.com", "smtp.gmail.com"),
    ("smtpgmaill.com", "smtp.gmail.com"),
    ("smtpgnail.com", "smtp.gmail.com"),
    ("smtpatt.net", "smtp.att.net"),
    ("smtpattt.net", "smtp.att.net"),
    ("smtpat.net", "smtp.att.net"),
    ("smtpcomcast.net", "smtp.comcast.net"),
    ("smtpcomcas.net", "smtp.comcast.net"),
    ("smtpconcast.net", "smtp.comcast.net"),
    ("smtpcomcats.net", "smtp.comcast.net"),
    ("smtpcox.net", "smtp.cox.net"),
    ("smtpcoxx.net", "smtp.cox.net"),
    ("smtpc0x.net", "smtp.cox.net"),
    ("smtptwc.com", "smtp.twc.com"),
    ("smtptw.com", "smtp.twc.com"),
    ("smtp2wc.com", "smtp.twc.com"),
    ("mailverizon.net", "mail.verizon.net"),
    ("mailveriz0n.net", "mail.verizon.net"),
    ("mailcomcast.net", "mail.comcast.net"),
    ("mailcocast.net", "mail.comcast.net"),
    ("mailatt.net", "mail.att.net"),
    ("mailat.net", "mail.att.net"),
    ("mailcox.net", "mail.cox.net"),
    ("mailc0x.net", "mail.cox.net"),
    ("mailtwc.com", "mail.twc.com"),
    ("mai1twc.com", "mail.twc.com"),
    ("outgoingverizon.net", "outgoing.verizon.net"),
    ("outgoingverizin.net", "outgoing.verizon.net"),
    ("smtppaypal.com", "smtp.paypal.com"),
    ("smtppaypa1.com", "smtp.paypal.com"),
    ("smtppayal.com", "smtp.paypal.com"),
    ("smtpchase.com", "smtp.chase.com"),
    ("smtpchace.com", "smtp.chase.com"),
    ("smtpchas.com", "smtp.chase.com"),
    ("smtpchasse.com", "smtp.chase.com"),
    ("smtpchhase.com", "smtp.chase.com"),
];

/// One collected email with its envelope metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedEmail {
    /// Which study domain received it.
    pub domain: DomainName,
    /// The VPS IP it arrived on (distinguishes SMTP typos).
    pub vps_ip: Ipv4Addr,
    /// Arrival day.
    pub date: SimDate,
    /// HELO name the client announced.
    pub client_helo: String,
    /// Envelope sender.
    pub mail_from: Option<ets_mail::EmailAddress>,
    /// Envelope recipient.
    pub rcpt_to: ets_mail::EmailAddress,
    /// The parsed message.
    pub message: ets_mail::Message,
    /// Whether this arrived as an SMTP relay submission (the sender was
    /// *using* us as their outgoing server) rather than inbound delivery.
    pub smtp_submission: bool,
}

impl CollectedEmail {
    /// Approximate heap bytes of this record's payload (envelope strings
    /// plus the message) — what the streaming pipeline's `MemGauge`
    /// accounts while the email is in flight.
    pub fn approx_heap_bytes(&self) -> u64 {
        let envelope = self.client_helo.len()
            + self.domain.as_str().len()
            + self
                .mail_from
                .as_ref()
                .map_or(0, |a| a.local().len() + a.domain().len())
            + self.rcpt_to.local().len()
            + self.rcpt_to.domain().len();
        envelope as u64 + self.message.approx_heap_bytes()
    }
}

/// The assembled infrastructure.
#[derive(Debug)]
pub struct CollectionInfra {
    /// The 76 study domains.
    pub domains: Vec<StudyDomain>,
    /// domain → dedicated VPS address.
    pub vps_map: HashMap<DomainName, Ipv4Addr>,
    /// domain → days actually collected (outages subtracted).
    pub collection_days: HashMap<DomainName, u32>,
    /// Global outage windows (start day, length) — Figures 3/4 gaps.
    pub outages: Vec<(u32, u32)>,
    /// The registry holding the study registrations.
    pub registry: Registry,
    /// domain → index into `domains`, so the per-email
    /// [`CollectionInfra::study_domain`] lookup is a hash probe instead of
    /// a scan over all 76 records.
    domain_index: HashMap<DomainName, usize>,
}

impl CollectionInfra {
    /// Builds the full 76-domain infrastructure, registering every domain
    /// with its Table-1 zone.
    pub fn build() -> CollectionInfra {
        let mut domains = Vec::new();
        for (typo, target) in PROVIDER_TYPOS {
            domains.push(study_domain(typo, target, CollectionPurpose::Provider));
        }
        for (typo, target, purpose) in SPECIAL_TYPOS {
            domains.push(study_domain(typo, target, purpose));
        }
        for (typo, target) in SMTP_TYPOS {
            let purpose = if target.contains("paypal") || target.contains("chase") {
                CollectionPurpose::Financial
            } else {
                CollectionPurpose::SmtpServer
            };
            domains.push(study_domain(typo, target, purpose));
        }
        assert_eq!(domains.len(), 76, "the study registered 76 domains");

        let registry = Registry::new();
        let mut vps_map = HashMap::new();
        let mut collection_days = HashMap::new();
        // The two major gaps visible in Figures 3/4 (infrastructure
        // overwhelmed by spam): late July and most of October.
        let outages: Vec<(u32, u32)> = vec![(52, 9), (125, 24)];
        let outage_days: u32 = outages.iter().map(|(_, l)| l).sum();
        for (i, d) in domains.iter().enumerate() {
            let ip = Ipv4Addr::new(198, 51, (i / 250) as u8, (i % 250 + 1) as u8);
            let fq = Fqdn::from_domain(d.domain());
            registry.register(
                Registration {
                    domain: fq.clone(),
                    registrar: "study-registrar".to_owned(),
                    whois: WhoisRecord::full(
                        "Research Group",
                        "University",
                        "research@university.example",
                        "+1.4120000000",
                        "",
                        "5000 Forbes Ave",
                    ),
                    privacy_proxy: None,
                    nameservers: vec!["ns1.university.example".parse().expect("valid")],
                    created_day: 0,
                },
                Some(Zone::catch_all(&fq, ip, 300)),
            );
            vps_map.insert(d.domain().clone(), ip);
            // Minor per-domain jitter in collection coverage.
            let jitter = (i as u32 * 7) % 5;
            collection_days.insert(d.domain().clone(), STUDY_DAYS - outage_days - jitter);
        }
        let domain_index = domains
            .iter()
            .enumerate()
            .map(|(i, d)| (d.domain().clone(), i))
            .collect();
        CollectionInfra {
            domains,
            vps_map,
            collection_days,
            outages,
            registry,
            domain_index,
        }
    }

    /// Whether `day` falls inside an outage (no collection).
    pub fn in_outage(&self, day: SimDate) -> bool {
        self.outages
            .iter()
            .any(|&(start, len)| day.day() >= start && day.day() < start + len)
    }

    /// The study domain record for a domain name.
    pub fn study_domain(&self, domain: &DomainName) -> Option<&StudyDomain> {
        self.domain_index.get(domain).map(|&i| &self.domains[i])
    }

    /// Receiver-typo domains (the 31).
    pub fn receiver_domains(&self) -> impl Iterator<Item = &StudyDomain> {
        self.domains.iter().filter(|d| {
            matches!(
                d.purpose,
                CollectionPurpose::Provider
                    | CollectionPurpose::Disposable
                    | CollectionPurpose::BulkSender
            )
        })
    }

    /// SMTP-typo domains (the 45).
    pub fn smtp_domains(&self) -> impl Iterator<Item = &StudyDomain> {
        self.domains.iter().filter(|d| {
            matches!(
                d.purpose,
                CollectionPurpose::SmtpServer | CollectionPurpose::Financial
            )
        })
    }

    /// Identifies the study domain owning a VPS address.
    ///
    /// `min` instead of `find`: the map is injective by construction, but
    /// `find` over a hash map would tie-break by hash order if it ever
    /// stopped being so.
    pub fn domain_for_ip(&self, ip: Ipv4Addr) -> Option<&DomainName> {
        self.vps_map
            .iter()
            .filter(|(_, &v)| v == ip)
            .map(|(d, _)| d)
            .min()
    }
}

/// Builds a [`StudyDomain`] from a typo/target pair, computing the real
/// mistake metadata via the typo generator when the pair is DL-1, and
/// synthesizing doppelganger metadata for missing-dot names.
fn study_domain(typo: &str, target: &str, purpose: CollectionPurpose) -> StudyDomain {
    let typo_d: DomainName = typo.parse().expect("static study domain");
    let target_d: DomainName = target.parse().expect("static target");
    // Classify the typo against the registrable target directly (gives the
    // exact kind/position/visual metadata that searching the generated
    // DL-1 candidate set would, without generating it).
    let candidate = typogen::classify_dl1(&target_d.registrable(), &typo_d)
        .or_else(|| {
            // Doppelganger (smtp.verizon.net → smtpverizon.net) or deeper
            // mistake: synthesize metadata from the flattened subdomain.
            let dg = typogen::generate_doppelgangers(std::slice::from_ref(&target_d));
            dg.into_iter().find(|c| c.domain == typo_d)
        })
        .unwrap_or_else(|| TypoCandidate {
            domain: typo_d.clone(),
            target: target_d.clone(),
            kind: ets_core::MistakeKind::Substitution,
            position: 0,
            fat_finger: false,
            visual: ets_core::distance::visual(target_d.sld(), typo_d.sld()),
        });
    StudyDomain { candidate, purpose }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_76_domains() {
        let infra = CollectionInfra::build();
        assert_eq!(infra.domains.len(), 76);
        assert_eq!(infra.receiver_domains().count(), 31);
        assert_eq!(infra.smtp_domains().count(), 45);
        assert_eq!(infra.registry.len(), 76);
    }

    #[test]
    fn one_to_one_vps_mapping() {
        let infra = CollectionInfra::build();
        let mut ips: Vec<Ipv4Addr> = infra.vps_map.values().copied().collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 76, "VPS addresses must be unique");
        // reverse lookup works
        let d = infra.domains[0].domain().clone();
        let ip = infra.vps_map[&d];
        assert_eq!(infra.domain_for_ip(ip), Some(&d));
    }

    #[test]
    fn zones_are_catch_all() {
        let infra = CollectionInfra::build();
        let resolver = ets_dns::Resolver::new(infra.registry.clone());
        let fq: Fqdn = "random.subdomain.gmaiql.com".parse().unwrap();
        let addr = resolver
            .mail_address(&fq)
            .expect("wildcard MX must resolve");
        assert_eq!(addr, infra.vps_map[&"gmaiql.com".parse().unwrap()]);
    }

    #[test]
    fn provider_typos_have_real_metadata() {
        let infra = CollectionInfra::build();
        let outlo0k = infra.study_domain(&"outlo0k.com".parse().unwrap()).unwrap();
        assert_eq!(outlo0k.candidate.kind, ets_core::MistakeKind::Substitution);
        assert!(outlo0k.candidate.fat_finger);
        assert!(outlo0k.candidate.visual < 0.2);
        let gmial = infra.study_domain(&"gmai-l.com".parse().unwrap()).unwrap();
        assert_eq!(gmial.candidate.target.as_str(), "gmail.com");
    }

    #[test]
    fn smtp_typos_are_doppelgangers_or_deeper() {
        let infra = CollectionInfra::build();
        let d = infra
            .study_domain(&"smtpverizon.net".parse().unwrap())
            .unwrap();
        assert_eq!(d.candidate.target.as_str(), "smtp.verizon.net");
        assert_eq!(d.purpose, CollectionPurpose::SmtpServer);
        let fin = infra
            .study_domain(&"smtpchase.com".parse().unwrap())
            .unwrap();
        assert_eq!(fin.purpose, CollectionPurpose::Financial);
    }

    #[test]
    fn outages_carve_the_study_window() {
        let infra = CollectionInfra::build();
        assert!(infra.in_outage(SimDate(53)));
        assert!(infra.in_outage(SimDate(130)));
        assert!(!infra.in_outage(SimDate(0)));
        assert!(!infra.in_outage(SimDate(200)));
        for d in &infra.domains {
            let days = infra.collection_days[d.domain()];
            assert!(days > 180 && days < STUDY_DAYS, "{}: {days}", d.domain());
        }
    }

    #[test]
    fn expected_kinds_are_purpose_driven() {
        let infra = CollectionInfra::build();
        let smtp = infra
            .study_domain(&"mx4hotmail.com".parse().unwrap())
            .unwrap();
        assert_eq!(
            smtp.expected_kinds(),
            &[ets_core::taxonomy::EmailTypoKind::Smtp]
        );
    }
}
