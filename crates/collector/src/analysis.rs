//! The Section-4.4 analyses: everything between funnel verdicts and the
//! numbers/figures the paper prints.
//!
//! All yearly numbers use the paper's normalization `y = x · 365 / d`
//! where `d` is the days a domain actually collected. Spam was *generated*
//! at `spam_scale` of the paper's volume (see
//! [`crate::traffic::TrafficConfig`]), so spam-side counts are multiplied
//! back by `1 / spam_scale`; surviving-typo counts are generated at full
//! scale and reported as-is.

use crate::extract;
use crate::funnel::FunnelVerdict;
use crate::infra::{CollectedEmail, CollectionInfra};
use crate::scrub::{self, SensitiveKind};
use crate::time::STUDY_DAYS;
use ets_core::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The analysis engine: emails + verdicts + infrastructure context.
pub struct StudyAnalysis<'a> {
    infra: &'a CollectionInfra,
    emails: &'a [CollectedEmail],
    verdicts: &'a [FunnelVerdict],
    /// Spam-side generation scale (1.0 = paper scale).
    pub spam_scale: f64,
}

/// The §4.4.1 headline volumes, yearly-projected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Volumes {
    /// Total emails/year (spam-side scaled to paper volume).
    pub total: f64,
    /// Receiver/reflection candidates per year.
    pub receiver_candidates: f64,
    /// SMTP-typo candidates per year.
    pub smtp_candidates: f64,
    /// Emails passing all filters per year (survivors).
    pub pass_funnel: f64,
    /// Surviving receiver + reflection typos per year.
    pub receiver_reflection: f64,
    /// SMTP typos per year: (lower bound, upper bound) — survivors alone,
    /// and survivors plus the frequency-filtered candidates that might be
    /// legitimate bursts.
    pub smtp_range: (f64, f64),
    /// Reflection typos (Layer-4 classified) per year.
    pub reflections: f64,
    /// Receiver typos arriving on SMTP-purpose domains per year (the
    /// paper's unexplained ≈700).
    pub mystery_receiver: f64,
}

/// One day of Figure 3/4 series data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DailyCounts {
    /// Day index from the study epoch.
    pub day: u32,
    /// Spam-filtered count (Layers 1–3), at generated scale.
    pub spam: usize,
    /// Reflection and frequency-filtered count (Layers 4–5).
    pub auto_filtered: usize,
    /// Surviving true typos.
    pub true_typos: usize,
}

/// SMTP-typo persistence statistics (§4.4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistenceStats {
    /// Number of distinct SMTP-typo users observed.
    pub users: usize,
    /// Share whose persistence is a single email (undefined span).
    pub single_email: f64,
    /// Share persisting less than one day.
    pub under_one_day: f64,
    /// Share persisting less than one week.
    pub under_one_week: f64,
    /// Maximum persistence in days.
    pub max_days: i64,
    /// Share of users who sent at most four emails.
    pub at_most_four_emails: f64,
}

impl<'a> StudyAnalysis<'a> {
    /// Creates the analysis over classified emails.
    pub fn new(
        infra: &'a CollectionInfra,
        emails: &'a [CollectedEmail],
        verdicts: &'a [FunnelVerdict],
        spam_scale: f64,
    ) -> Self {
        assert_eq!(emails.len(), verdicts.len());
        StudyAnalysis {
            infra,
            emails,
            verdicts,
            spam_scale,
        }
    }

    fn rcpt_is_ours(&self, e: &CollectedEmail) -> bool {
        let rd = e.rcpt_to.domain();
        self.infra.domains.iter().any(|d| {
            let o = d.domain().as_str();
            rd == o || (rd.ends_with(o) && rd.as_bytes()[rd.len() - o.len() - 1] == b'.')
        })
    }

    /// Yearly projection for a count collected on `domain`.
    fn project(&self, domain: &DomainName, count: f64) -> f64 {
        let d = self
            .infra
            .collection_days
            .get(domain)
            .copied()
            .unwrap_or(STUDY_DAYS) as f64;
        count * 365.0 / d
    }

    /// The §4.4.1 headline volumes.
    pub fn volumes(&self) -> Volumes {
        let boost = 1.0 / self.spam_scale;
        let mut total = 0.0;
        let mut receiver_candidates = 0.0;
        let mut smtp_candidates = 0.0;
        let mut pass = 0.0;
        let mut recv_refl = 0.0;
        let mut smtp_survivors = 0.0;
        let mut smtp_freq_filtered = 0.0;
        let mut reflections = 0.0;
        let mut mystery = 0.0;
        for (e, v) in self.emails.iter().zip(self.verdicts) {
            let per_year = self.project(&e.domain, 1.0);
            // Scale spam-side mass back to paper volume; survivors and
            // Layer-4/5 typo-adjacent classes are full-scale.
            let weight = if v.is_spam() {
                per_year * boost
            } else {
                per_year
            };
            total += weight;
            let is_ours = self.rcpt_is_ours(e);
            if is_ours {
                receiver_candidates += weight;
            } else {
                smtp_candidates += weight;
            }
            match v {
                FunnelVerdict::ReceiverTypo => {
                    pass += per_year;
                    recv_refl += per_year;
                    let sd = self.infra.study_domain(&e.domain);
                    if let Some(sd) = sd {
                        if matches!(
                            sd.purpose,
                            ets_core::taxonomy::CollectionPurpose::SmtpServer
                                | ets_core::taxonomy::CollectionPurpose::Financial
                        ) {
                            mystery += per_year;
                        }
                    }
                }
                FunnelVerdict::Reflection => {
                    recv_refl += per_year;
                    reflections += per_year;
                }
                FunnelVerdict::SmtpTypo => {
                    pass += per_year;
                    smtp_survivors += per_year;
                }
                FunnelVerdict::FrequencyFiltered if !is_ours => {
                    smtp_freq_filtered += per_year;
                }
                _ => {}
            }
        }
        Volumes {
            total,
            receiver_candidates,
            smtp_candidates,
            pass_funnel: pass + reflections,
            receiver_reflection: recv_refl,
            smtp_range: (smtp_survivors, smtp_survivors + smtp_freq_filtered),
            reflections,
            mystery_receiver: mystery,
        }
    }

    /// Figure 3 (receiver candidates) or Figure 4 (SMTP candidates) daily
    /// series.
    pub fn daily_series(&self, smtp_side: bool) -> Vec<DailyCounts> {
        let mut per_day: HashMap<u32, DailyCounts> = HashMap::new();
        for (e, v) in self.emails.iter().zip(self.verdicts) {
            let is_smtp_candidate = !self.rcpt_is_ours(e);
            if is_smtp_candidate != smtp_side {
                continue;
            }
            let entry = per_day.entry(e.date.day()).or_insert(DailyCounts {
                day: e.date.day(),
                spam: 0,
                auto_filtered: 0,
                true_typos: 0,
            });
            if v.is_spam() {
                entry.spam += 1;
            } else if v.is_true_typo() {
                entry.true_typos += 1;
            } else {
                entry.auto_filtered += 1;
            }
        }
        let mut days: Vec<DailyCounts> = per_day.into_values().collect();
        days.sort_by_key(|d| d.day);
        days
    }

    /// Figure 5: surviving receiver typos per provider domain, sorted
    /// descending, with the cumulative share.
    pub fn figure5(&self) -> Vec<(DomainName, usize, f64)> {
        let provider_domains: Vec<&DomainName> = crate::infra::PROVIDER_TYPOS
            .iter()
            .map(|(t, _)| {
                self.infra
                    .domains
                    .iter()
                    .find(|d| d.domain().as_str() == *t)
                    .expect("provider typo registered")
                    .domain()
            })
            .collect();
        let mut counts: HashMap<&DomainName, usize> = HashMap::new();
        for (e, v) in self.emails.iter().zip(self.verdicts) {
            if *v == FunnelVerdict::ReceiverTypo {
                if let Some(d) = provider_domains.iter().find(|d| ***d == e.domain) {
                    *counts.entry(d).or_insert(0) += 1;
                }
            }
        }
        let mut rows: Vec<(DomainName, usize)> = provider_domains
            .iter()
            .map(|d| ((*d).clone(), counts.get(d).copied().unwrap_or(0)))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let total: usize = rows.iter().map(|(_, c)| c).sum();
        let mut acc = 0usize;
        rows.into_iter()
            .map(|(d, c)| {
                acc += c;
                (d, c, acc as f64 / total.max(1) as f64)
            })
            .collect()
    }

    /// Figure 6: sensitive-information kinds per typo domain among the
    /// surviving true typos. Card findings are split by brand, matching
    /// the figure's `dinersclub`/`jcb`/`mastercard` rows.
    pub fn figure6(&self) -> HashMap<(DomainName, String), usize> {
        let mut heat: HashMap<(DomainName, String), usize> = HashMap::new();
        for (e, v) in self.emails.iter().zip(self.verdicts) {
            if !v.is_true_typo() && *v != FunnelVerdict::Reflection {
                continue;
            }
            let text = extract::full_text(&e.message);
            let result = scrub::scrub(&text);
            for f in &result.findings {
                let label = match (f.kind, f.brand) {
                    (SensitiveKind::CreditCard, Some(b)) => b.marker().to_owned(),
                    (k, _) => format!("{k:?}").to_ascii_lowercase(),
                };
                // The figure only shows the rare, high-value kinds.
                if matches!(
                    f.kind,
                    SensitiveKind::CreditCard
                        | SensitiveKind::Ein
                        | SensitiveKind::Password
                        | SensitiveKind::Username
                        | SensitiveKind::Vin
                        | SensitiveKind::Ssn
                ) {
                    *heat.entry((e.domain.clone(), label)).or_insert(0) += 1;
                }
            }
        }
        heat
    }

    /// Figure 7: attachment extension counts among surviving receiver
    /// typos, sorted by count descending.
    pub fn figure7(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for (e, v) in self.emails.iter().zip(self.verdicts) {
            if *v != FunnelVerdict::ReceiverTypo {
                continue;
            }
            for a in &e.message.attachments {
                if let Some(ext) = a.extension() {
                    *counts.entry(ext).or_insert(0) += 1;
                }
            }
        }
        let mut rows: Vec<(String, usize)> = counts.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }

    /// §4.4.2 SMTP-typo persistence, grouped by envelope sender.
    pub fn smtp_persistence(&self) -> PersistenceStats {
        let mut per_user: HashMap<String, Vec<i64>> = HashMap::new();
        for (e, v) in self.emails.iter().zip(self.verdicts) {
            if *v != FunnelVerdict::SmtpTypo {
                continue;
            }
            let key = e
                .mail_from
                .as_ref()
                .map(|a| a.to_string())
                .unwrap_or_else(|| format!("ip:{}", e.vps_ip));
            per_user.entry(key).or_default().push(e.date.day() as i64);
        }
        let users = per_user.len();
        if users == 0 {
            return PersistenceStats {
                users: 0,
                single_email: 0.0,
                under_one_day: 0.0,
                under_one_week: 0.0,
                max_days: 0,
                at_most_four_emails: 0.0,
            };
        }
        let mut single = 0usize;
        let mut day1 = 0usize;
        let mut week = 0usize;
        let mut max_days = 0i64;
        let mut le4 = 0usize;
        // ets-lint: allow(unordered-iteration): integer counters and max are
        // order-free aggregations.
        for days in per_user.values() {
            let span = days.iter().max().unwrap() - days.iter().min().unwrap();
            if days.len() == 1 {
                single += 1;
            }
            if span < 1 {
                day1 += 1;
            }
            if span < 7 {
                week += 1;
            }
            if days.len() <= 4 {
                le4 += 1;
            }
            max_days = max_days.max(span);
        }
        PersistenceStats {
            users,
            single_email: single as f64 / users as f64,
            under_one_day: day1 as f64 / users as f64,
            under_one_week: week as f64 / users as f64,
            max_days,
            at_most_four_emails: le4 as f64 / users as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funnel::Funnel;
    use crate::traffic::{TrafficConfig, TrafficGenerator};

    struct Fixture {
        infra: CollectionInfra,
        emails: Vec<CollectedEmail>,
        verdicts: Vec<FunnelVerdict>,
        spam_scale: f64,
    }

    fn fixture(seed: u64) -> Fixture {
        let infra = CollectionInfra::build();
        let config = TrafficConfig::test_scale(seed);
        let spam_scale = config.spam_scale;
        let gen = TrafficGenerator::new(&infra, config);
        let emails: Vec<CollectedEmail> = gen.generate().into_iter().map(|e| e.collected).collect();
        let funnel = Funnel::new(&infra);
        let verdicts = funnel.classify_all(&emails);
        Fixture {
            infra,
            emails,
            verdicts,
            spam_scale,
        }
    }

    #[test]
    fn volumes_have_paper_shape() {
        let f = fixture(21);
        let a = StudyAnalysis::new(&f.infra, &f.emails, &f.verdicts, f.spam_scale);
        let v = a.volumes();
        // Total back-projected to the 100M+ regime.
        assert!(v.total > 2.0e7, "total {}", v.total);
        // SMTP candidates dominate the raw volume (paper: 102.7M of 118.9M).
        assert!(v.smtp_candidates > v.receiver_candidates, "{v:?}");
        // Survivors are 3–4 orders of magnitude below candidates.
        assert!(v.pass_funnel < 25_000.0, "pass {}", v.pass_funnel);
        assert!(v.pass_funnel > 1_000.0, "pass {}", v.pass_funnel);
        // Receiver+reflection in the thousands (paper: 6,041).
        assert!(
            v.receiver_reflection > 2_000.0 && v.receiver_reflection < 15_000.0,
            "recv+refl {}",
            v.receiver_reflection
        );
        // SMTP range well below receiver volume (order of magnitude).
        assert!(v.smtp_range.0 < v.receiver_reflection / 2.0);
        assert!(v.smtp_range.1 >= v.smtp_range.0);
        // The mystery receiver typos on SMTP domains exist (paper: ~700).
        assert!(v.mystery_receiver > 100.0, "mystery {}", v.mystery_receiver);
    }

    #[test]
    fn daily_series_has_gaps_and_dominant_spam() {
        let f = fixture(22);
        let a = StudyAnalysis::new(&f.infra, &f.emails, &f.verdicts, f.spam_scale);
        let series = a.daily_series(false);
        assert!(series.len() > 150);
        // Outage days absent.
        for d in &series {
            assert!(!f.infra.in_outage(crate::time::SimDate(d.day)));
        }
        // Spam arrives essentially every day; scaled back to paper volume
        // (×1/spam_scale) it dwarfs the true-typo counts.
        let spam_days = series.iter().filter(|d| d.spam > 0).count();
        assert!(
            spam_days * 10 > series.len() * 6,
            "{spam_days}/{}",
            series.len()
        );
        let spam_total: f64 = series.iter().map(|d| d.spam as f64 / f.spam_scale).sum();
        let typo_total_f: f64 = series.iter().map(|d| d.true_typos as f64).sum();
        assert!(spam_total > typo_total_f * 100.0);
        // True typos occur at a near-constant low rate.
        let typo_total: usize = series.iter().map(|d| d.true_typos).sum();
        assert!(typo_total > 1_000);
    }

    #[test]
    fn smtp_series_is_sparser_than_receiver_series() {
        let f = fixture(23);
        let a = StudyAnalysis::new(&f.infra, &f.emails, &f.verdicts, f.spam_scale);
        let recv: usize = a.daily_series(false).iter().map(|d| d.true_typos).sum();
        let smtp: usize = a.daily_series(true).iter().map(|d| d.true_typos).sum();
        assert!(smtp < recv / 2, "smtp {smtp} vs receiver {recv}");
    }

    #[test]
    fn figure5_concentration() {
        let f = fixture(24);
        let a = StudyAnalysis::new(&f.infra, &f.emails, &f.verdicts, f.spam_scale);
        let rows = a.figure5();
        assert_eq!(rows.len(), 27);
        // Monotone cumulative reaching 1.
        assert!((rows.last().unwrap().2 - 1.0).abs() < 1e-9);
        // Two domains majority-ish, twelve domains ≈ everything.
        assert!(rows[1].2 > 0.45, "top-2 share {}", rows[1].2);
        assert!(rows[11].2 > 0.92, "top-12 share {}", rows[11].2);
    }

    #[test]
    fn figure6_has_disposable_credentials() {
        let f = fixture(25);
        let a = StudyAnalysis::new(&f.infra, &f.emails, &f.verdicts, f.spam_scale);
        let heat = a.figure6();
        assert!(!heat.is_empty());
        // yopail (disposable typo) accumulates usernames/passwords.
        let yopail: DomainName = "yopail.com".parse().unwrap();
        let yopail_creds: usize = heat
            .iter()
            .filter(|((d, k), _)| *d == yopail && (k == "username" || k == "password"))
            .map(|(_, &c)| c)
            .sum();
        assert!(yopail_creds > 0, "heatmap: {heat:?}");
    }

    #[test]
    fn figure7_extension_mix() {
        let f = fixture(26);
        let a = StudyAnalysis::new(&f.infra, &f.emails, &f.verdicts, f.spam_scale);
        let rows = a.figure7();
        assert!(rows.len() >= 5, "{rows:?}");
        // pdf leads, docx close behind (Figure 7's dominant types).
        assert_eq!(rows[0].0, "pdf", "{rows:?}");
        let get = |e: &str| {
            rows.iter()
                .find(|(x, _)| x == e)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert!(get("docx") > get("xls"), "{rows:?}");
        // No archives among true typos: Layer 2 removed them.
        assert_eq!(get("zip"), 0);
        assert_eq!(get("rar"), 0);
    }

    #[test]
    fn persistence_matches_paper_shape() {
        let f = fixture(27);
        let a = StudyAnalysis::new(&f.infra, &f.emails, &f.verdicts, f.spam_scale);
        let p = a.smtp_persistence();
        assert!(p.users > 30, "users {}", p.users);
        // 70% single email; 83% < 1 day; 90% < 1 week; ≤4 emails for 90%.
        assert!(p.single_email > 0.5, "single {}", p.single_email);
        assert!(p.under_one_day >= p.single_email);
        assert!(p.under_one_week >= p.under_one_day);
        assert!(p.under_one_week > 0.75, "week {}", p.under_one_week);
        assert!(p.at_most_four_emails > 0.7, "≤4 {}", p.at_most_four_emails);
        assert!(p.max_days <= 209);
    }

    #[test]
    fn empty_input() {
        let infra = CollectionInfra::build();
        let a = StudyAnalysis::new(&infra, &[], &[], 1.0);
        let v = a.volumes();
        assert_eq!(v.total, 0.0);
        assert!(a.daily_series(false).is_empty());
        assert_eq!(a.smtp_persistence().users, 0);
        let f5 = a.figure5();
        assert_eq!(f5.len(), 27);
    }
}
