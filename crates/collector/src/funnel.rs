//! The five-layer spam/typo classification funnel (§4.3).
//!
//! Each email marked spam at a layer is not considered further:
//!
//! 1. **Header sanity** — the relaying VPS must match the domain, the
//!    sender must not claim to be one of our domains (we never send), and
//!    a receiver-candidate's recipient must be at one of our domains.
//! 2. **Spam scorer** — the SpamAssassin stand-in, plus the hard rule
//!    that ZIP/RAR attachments are spam.
//! 3. **Collaborative filtering** — any sender who ever sent us spam is
//!    spam everywhere; any bag-of-words (>20 words) seen on a spam email
//!    flags every email with the same bag.
//! 4. **Reflection detection** — unsubscribe headers, bounce senders,
//!    disagreeing From/Reply-To/Return-Path, list-mail body phrases,
//!    system-user senders.
//! 5. **Frequency filtering** — recipient address seen ≥ 20 times, or
//!    sender address / body seen ≥ 10 times, cannot be a unique human
//!    mistake.
//!
//! Emails whose envelope recipient is *not* at a study domain arrived as
//! relay submissions: they are SMTP-typo candidates and skip Layer 5's
//! receiver-specific reasoning (though their frequency statistics are
//! still reported — the paper's 415–5,970/year range comes from exactly
//! this ambiguity).

use crate::infra::{CollectedEmail, CollectionInfra};
use crate::spamscore::SpamScorer;
use ets_parallel::{par_fold, par_map};
use ets_scan::{PatternSet, TokenStream};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

/// Thresholds of Layer 5 (§4.3: 20 / 10 / 10).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunnelConfig {
    /// Recipient-address frequency threshold.
    pub recipient_freq: usize,
    /// Sender-address frequency threshold.
    pub sender_freq: usize,
    /// Body-content frequency threshold.
    pub content_freq: usize,
    /// Bag-of-words minimum size for Layer 3.
    pub bow_min_words: usize,
    /// Spam-scorer threshold for Layer 2.
    pub spam_threshold: f64,
}

impl Default for FunnelConfig {
    fn default() -> Self {
        FunnelConfig {
            recipient_freq: 20,
            sender_freq: 10,
            content_freq: 10,
            bow_min_words: 20,
            spam_threshold: crate::spamscore::DEFAULT_THRESHOLD,
        }
    }
}

/// Final classification of one email.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunnelVerdict {
    /// Spam caught by header sanity (Layer 1).
    SpamHeader,
    /// Spam caught by the scorer or archive rule (Layer 2).
    SpamScore,
    /// Spam caught collaboratively (Layer 3).
    SpamCollaborative,
    /// Automated reflection-typo mail (Layer 4).
    Reflection,
    /// Filtered by frequency (Layer 5) — too common to be a unique typo.
    FrequencyFiltered,
    /// A surviving receiver typo.
    ReceiverTypo,
    /// A surviving SMTP typo.
    SmtpTypo,
}

impl FunnelVerdict {
    /// Whether the verdict is one of the three spam layers.
    pub fn is_spam(self) -> bool {
        matches!(
            self,
            FunnelVerdict::SpamHeader | FunnelVerdict::SpamScore | FunnelVerdict::SpamCollaborative
        )
    }

    /// Whether the email survived all five layers as a true typo.
    pub fn is_true_typo(self) -> bool {
        matches!(self, FunnelVerdict::ReceiverTypo | FunnelVerdict::SmtpTypo)
    }

    /// Stable snake-case key used for metric names (`funnel.verdict.<key>`).
    pub fn key(self) -> &'static str {
        match self {
            FunnelVerdict::SpamHeader => "spam_header",
            FunnelVerdict::SpamScore => "spam_score",
            FunnelVerdict::SpamCollaborative => "spam_collaborative",
            FunnelVerdict::Reflection => "reflection",
            FunnelVerdict::FrequencyFiltered => "frequency_filtered",
            FunnelVerdict::ReceiverTypo => "receiver_typo",
            FunnelVerdict::SmtpTypo => "smtp_typo",
        }
    }
}

/// Compact per-email evidence: everything the corpus-level layers (3
/// and 5) need from one email, extracted by a single pure pass.
///
/// Feature extraction is the embarrassingly parallel part of
/// classification; feeding identical feature sequences to
/// [`Funnel::finish`] yields identical verdicts however the extraction
/// was sharded, which is what lets the streaming pipeline match the
/// batch oracle byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmailFeatures {
    /// Layers 1–2 verdict (purely per-email); `None` for survivors.
    pub verdict12: Option<FunnelVerdict>,
    /// FNV of the envelope sender (layer-3 blacklist, layer-5 table).
    pub sender: Option<u64>,
    /// Bag-of-words fingerprint (layer-3 collaborative content).
    pub bag: Option<u64>,
    /// FNV of the envelope recipient (layer-5 table).
    pub rcpt_key: u64,
    /// FNV of the trimmed body (layer-5 table).
    pub body_hash: u64,
    /// Layer-4 reflection predicate, evaluated on layer-1/2 survivors
    /// (spam is the bulk of traffic and never reaches layer 4).
    pub reflection: bool,
    /// Recipient at a study domain → receiver-candidate thresholds.
    pub rcpt_ours: bool,
    /// Body bytes the scan layers covered (`funnel.scan.bytes` share).
    pub body_bytes: u64,
}

/// Mergeable cross-email state: the layer-5 frequency tables.
///
/// Counts accumulate by addition, which commutes — per-shard accumulators
/// merged under any epoch grouping equal the tables one sequential pass
/// would build, so sharding never changes a frequency verdict.
#[derive(Debug, Clone, Default)]
pub struct FunnelState {
    rcpt_freq: HashMap<u64, u32>,
    sender_freq: HashMap<u64, u32>,
    body_freq: HashMap<u64, u32>,
}

impl FunnelState {
    /// Empty tables.
    pub fn new() -> FunnelState {
        FunnelState::default()
    }

    /// Counts one email's keys.
    pub fn absorb(&mut self, f: &EmailFeatures) {
        *self.rcpt_freq.entry(f.rcpt_key).or_insert(0) += 1;
        if let Some(s) = f.sender {
            *self.sender_freq.entry(s).or_insert(0) += 1;
        }
        *self.body_freq.entry(f.body_hash).or_insert(0) += 1;
    }

    /// Adds another shard's counts into this accumulator. Keyed integer
    /// addition commutes, so iterating the source tables in hash order
    /// is safe — ets-lint recognizes the entry-fold shape and exempts
    /// these loops from `unordered-iteration`.
    pub fn merge(&mut self, part: FunnelState) {
        for (k, v) in part.rcpt_freq {
            *self.rcpt_freq.entry(k).or_insert(0) += v;
        }
        for (k, v) in part.sender_freq {
            *self.sender_freq.entry(k).or_insert(0) += v;
        }
        for (k, v) in part.body_freq {
            *self.body_freq.entry(k).or_insert(0) += v;
        }
    }

    /// Emails absorbed so far (every email counts once in the body table).
    pub fn emails(&self) -> u64 {
        // ets-lint: allow(unordered-iteration): u64 sum is commutative.
        self.body_freq.values().map(|&v| v as u64).sum()
    }
}

/// One epoch's worth of extracted evidence: per-email features in
/// arrival order plus the epoch's frequency accumulator — the unit of
/// work a streaming shard hands back for deterministic epoch-merge.
#[derive(Debug, Default)]
pub struct FeatureBatch {
    /// Per-email features, in epoch order.
    pub feats: Vec<EmailFeatures>,
    /// Frequency counts for exactly `feats`.
    pub freq: FunnelState,
}

/// The funnel, bound to the study infrastructure.
pub struct Funnel<'a> {
    infra: &'a CollectionInfra,
    config: FunnelConfig,
    scorer: SpamScorer,
    /// Study-domain names for O(1) "at one of ours?" checks. Every study
    /// domain is a two-label registrable, so membership of a host's last
    /// two labels is exactly the suffix scan it replaces (the label
    /// boundary is the dot we split at).
    study_set: HashSet<String>,
}

/// The last two labels of `host`, or `host` itself when it has fewer.
fn registrable_suffix(host: &str) -> &str {
    match host.rfind('.') {
        Some(last) => match host[..last].rfind('.') {
            Some(prev) => &host[prev + 1..],
            None => host,
        },
        None => host,
    }
}

impl<'a> Funnel<'a> {
    /// Creates a funnel with the paper's thresholds.
    pub fn new(infra: &'a CollectionInfra) -> Self {
        Funnel::with_config(infra, FunnelConfig::default())
    }

    /// Creates a funnel with custom thresholds (ablations).
    pub fn with_config(infra: &'a CollectionInfra, config: FunnelConfig) -> Self {
        let scorer = SpamScorer {
            threshold: config.spam_threshold,
        };
        let study_set = infra
            .domains
            .iter()
            .map(|d| d.domain().as_str().to_owned())
            .collect();
        Funnel {
            infra,
            config,
            scorer,
            study_set,
        }
    }

    /// Whether the recipient is at (a subdomain of) a study domain.
    fn rcpt_is_ours(&self, email: &CollectedEmail) -> bool {
        self.study_set
            .contains(registrable_suffix(email.rcpt_to.domain()))
    }

    /// Layer 1: header sanity. Returns `true` when spam.
    fn layer1_spam(&self, email: &CollectedEmail) -> bool {
        // The relaying VPS must be the one assigned to the domain.
        match self.infra.vps_map.get(&email.domain) {
            Some(&ip) if ip == email.vps_ip => {}
            _ => return true,
        }
        // The sender must not be one of our domains: we never send email,
        // and spammers love posing as the recipient's domain.
        if let Some(from) = email.mail_from.as_ref() {
            if self.study_set.contains(registrable_suffix(from.domain())) {
                return true;
            }
        }
        // Header From posing as us (or any subdomain of us) is equally
        // disqualifying.
        if let Some(from) = email.message.from_addr() {
            let fd = from.domain();
            let o = email.domain.as_str();
            if fd == o || (fd.ends_with(o) && fd.as_bytes()[fd.len() - o.len() - 1] == b'.') {
                return true;
            }
        }
        false
    }

    /// Layer 2: spam scorer + archive rule. Returns `true` when spam.
    fn layer2_spam(&self, email: &CollectedEmail) -> bool {
        if email.message.has_attachment_ext(&["zip", "rar"]) {
            return true;
        }
        self.scorer.is_spam(&email.message)
    }

    /// Layer 4: automated reflection mail. Returns `true` for reflections.
    fn layer4_reflection(&self, email: &CollectedEmail) -> bool {
        reflection_mail(email)
    }

    /// Extracts one email's [`EmailFeatures`] — a pure per-email function
    /// of the email alone, so extraction can run on any shard in any
    /// order. Layers 1–2 are decided here; the layer-4 predicate is
    /// evaluated only for their survivors.
    pub fn features(&self, email: &CollectedEmail) -> EmailFeatures {
        let verdict12 = if self.layer1_spam(email) {
            Some(FunnelVerdict::SpamHeader)
        } else if self.layer2_spam(email) {
            Some(FunnelVerdict::SpamScore)
        } else {
            None
        };
        EmailFeatures {
            verdict12,
            // Sender identity is the FNV of the canonical `local@domain`
            // rendering (hashed in place, no per-email string) — the same
            // keying scheme the body table uses.
            sender: email.mail_from.as_ref().map(fnv_addr),
            bag: bag_of_words(&email.message.body, self.config.bow_min_words),
            rcpt_key: fnv_addr(&email.rcpt_to),
            body_hash: fnv(email.message.body.trim().as_bytes()),
            reflection: verdict12.is_none() && self.layer4_reflection(email),
            rcpt_ours: self.rcpt_is_ours(email),
            body_bytes: email.message.body.len() as u64,
        }
    }

    /// Extracts one epoch's features plus its shard-local frequency
    /// accumulator — the streaming work unit. Emails must be passed in
    /// epoch order.
    pub fn feature_batch<'e>(
        &self,
        emails: impl IntoIterator<Item = &'e CollectedEmail>,
    ) -> FeatureBatch {
        let mut batch = FeatureBatch::default();
        for email in emails {
            let f = self.features(email);
            batch.freq.absorb(&f);
            batch.feats.push(f);
        }
        batch
    }

    /// Runs the corpus-level layers (3, 4, 5) over extracted features.
    ///
    /// `feats` must be in canonical arrival order and `freq` must hold
    /// exactly their counts. Each layer-3 fixpoint iteration is a pure
    /// function of the verdict state at its start (the spam sender/bag
    /// tables build by parallel fold — set union is order-insensitive —
    /// then survivors re-flag in a parallel map); layers 4 and 5 only
    /// read per-email flags and `freq`. Verdicts are therefore a pure
    /// function of the feature sequence — independent of thread count
    /// and of how extraction was sharded into epochs.
    pub fn finish(&self, feats: &[EmailFeatures], freq: &FunnelState) -> Vec<FunnelVerdict> {
        let n = feats.len();
        let mut finish_span = ets_obs::span!("funnel.finish");
        finish_span.arg("emails", n as u64);
        let mut verdicts: Vec<Option<FunnelVerdict>> = feats.iter().map(|f| f.verdict12).collect();

        // Layer 3 — collect spam senders and spam bags, then propagate
        // until fixpoint (a newly flagged email contributes its
        // sender/bag too; one extra sweep suffices in practice, but loop
        // to be exact).
        let mut layer3 = ets_obs::span!("funnel.layer3", ets_obs::Level::Debug);
        let mut layer3_rounds = 0u64;
        loop {
            layer3_rounds += 1;
            let (spam_senders, spam_bags) = par_fold(
                &verdicts,
                || (HashSet::<u64>::new(), HashSet::<u64>::new()),
                |acc, i, v| {
                    if matches!(v, Some(v) if v.is_spam()) {
                        if let Some(s) = feats[i].sender {
                            acc.0.insert(s);
                        }
                        if let Some(b) = feats[i].bag {
                            acc.1.insert(b);
                        }
                    }
                },
                |acc, part| {
                    acc.0.extend(part.0);
                    acc.1.extend(part.1);
                },
            );
            let newly_spam: Vec<bool> = par_map(&verdicts, |i, v| {
                if v.is_some() {
                    return false;
                }
                let sender_hit = feats[i]
                    .sender
                    .map(|s| spam_senders.contains(&s))
                    .unwrap_or(false);
                let bag_hit = feats[i]
                    .bag
                    .map(|b| spam_bags.contains(&b))
                    .unwrap_or(false);
                sender_hit || bag_hit
            });
            let mut changed = false;
            for (i, &hit) in newly_spam.iter().enumerate() {
                if hit {
                    verdicts[i] = Some(FunnelVerdict::SpamCollaborative);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        layer3.arg("rounds", layer3_rounds);
        ets_obs::metrics::counter_add("funnel.layer3.rounds", layer3_rounds);
        drop(layer3);

        // Layer 4 on survivors: the predicate was evaluated at feature
        // time; here it only applies to emails layer 3 left standing.
        let layer4 = ets_obs::span!("funnel.layer4", ets_obs::Level::Debug);
        for (i, f) in feats.iter().enumerate() {
            if verdicts[i].is_none() && f.reflection {
                verdicts[i] = Some(FunnelVerdict::Reflection);
            }
        }
        drop(layer4);

        // Layer 5 — frequency thresholds against the corpus-wide tables.
        let layer5 = ets_obs::span!("funnel.layer5", ets_obs::Level::Debug);
        let finals: Vec<Option<FunnelVerdict>> = par_map(feats, |i, f| {
            if verdicts[i].is_some() {
                return None;
            }
            if f.rcpt_ours {
                let too_frequent = freq.rcpt_freq[&f.rcpt_key] as usize
                    >= self.config.recipient_freq
                    || f.sender
                        .map(|s| freq.sender_freq[&s] as usize >= self.config.sender_freq)
                        .unwrap_or(false)
                    || freq.body_freq[&f.body_hash] as usize >= self.config.content_freq;
                Some(if too_frequent {
                    FunnelVerdict::FrequencyFiltered
                } else {
                    FunnelVerdict::ReceiverTypo
                })
            } else {
                // Relay submission: an SMTP-typo candidate. A single user
                // legitimately repeats, so the receiver thresholds do not
                // disqualify it (§4.3: Layer 5 exempts SMTP typos); but
                // machine-frequency bodies are still filtered.
                let automated =
                    freq.body_freq[&f.body_hash] as usize >= self.config.content_freq * 4;
                Some(if automated {
                    FunnelVerdict::FrequencyFiltered
                } else {
                    FunnelVerdict::SmtpTypo
                })
            }
        });
        for (i, f) in finals.into_iter().enumerate() {
            if let Some(v) = f {
                verdicts[i] = Some(v);
            }
        }
        drop(layer5);
        debug_assert_eq!(verdicts.len(), n);
        let verdicts: Vec<FunnelVerdict> = verdicts
            .into_iter()
            .map(|v| v.expect("all classified"))
            .collect();
        // Verdict tallies are pure workload quantities — identical across
        // thread counts, so they belong in the deterministic registry.
        let mut tally = [0u64; 7];
        for v in &verdicts {
            tally[*v as usize] += 1;
        }
        for (v, &count) in [
            FunnelVerdict::SpamHeader,
            FunnelVerdict::SpamScore,
            FunnelVerdict::SpamCollaborative,
            FunnelVerdict::Reflection,
            FunnelVerdict::FrequencyFiltered,
            FunnelVerdict::ReceiverTypo,
            FunnelVerdict::SmtpTypo,
        ]
        .iter()
        .zip(tally.iter())
        {
            if count > 0 {
                ets_obs::metrics::counter_add(&format!("funnel.verdict.{}", v.key()), count);
            }
        }
        verdicts
    }

    /// Classifies a whole collection: the batch oracle.
    ///
    /// Features extract in one data-parallel pass, the frequency tables
    /// build by parallel fold of per-chunk accumulators merged by
    /// addition, and [`Funnel::finish`] runs the corpus-level layers.
    /// Output is identical for any thread count — and identical to the
    /// streaming path, which extracts the same features epoch by epoch
    /// and merges the same accumulators before the same `finish`.
    pub fn classify_all(&self, emails: &[CollectedEmail]) -> Vec<FunnelVerdict> {
        let n = emails.len();
        let mut funnel_span = ets_obs::span!("funnel.classify");
        funnel_span.arg("emails", n as u64);
        ets_obs::metrics::counter_add("funnel.emails", n as u64);
        let features_span = ets_obs::span!("funnel.features", ets_obs::Level::Debug);
        let feats: Vec<EmailFeatures> = par_map(emails, |_, e| self.features(e));
        drop(features_span);
        // Bytes the single-pass scan layers (2 and 4) cover — a pure
        // workload quantity, so it belongs in the commutative registry.
        let scan_bytes: u64 = feats.iter().map(|f| f.body_bytes).sum();
        ets_obs::metrics::counter_add("funnel.scan.bytes", scan_bytes);
        let freq = par_fold(
            &feats,
            FunnelState::new,
            |acc, _, f| acc.absorb(f),
            |acc, part| acc.merge(part),
        );
        self.finish(&feats, &freq)
    }
}

/// Layer-4 list-mail body phrases (§4.3).
const REFLECTION_PHRASES: [&str; 5] = [
    "unsubscribe",
    "remove yourself",
    "to stop receiving",
    "manage your subscription",
    "you are receiving this because",
];

/// Layer-4 sender-header cues.
const HEADER_CUES: [&str; 2] = ["bounce", "unsubscribe"];

fn reflection_phrase_set() -> &'static PatternSet<()> {
    static SET: OnceLock<PatternSet<()>> = OnceLock::new();
    SET.get_or_init(|| {
        let tagged: Vec<(&str, ())> = REFLECTION_PHRASES.iter().map(|p| (*p, ())).collect();
        PatternSet::compile(&tagged)
    })
}

fn header_cue_set() -> &'static PatternSet<()> {
    static SET: OnceLock<PatternSet<()>> = OnceLock::new();
    SET.get_or_init(|| {
        let tagged: Vec<(&str, ())> = HEADER_CUES.iter().map(|p| (*p, ())).collect();
        PatternSet::compile(&tagged)
    })
}

/// The Layer-4 reflection predicate: unsubscribe headers, bounce
/// senders, disagreeing From/Reply-To/Return-Path, list-mail body
/// phrases, system-user senders. Phrase and header-cue checks run on
/// compiled `ets-scan` sets — one case-folding pass per text, no
/// lowercased copies.
pub fn reflection_mail(email: &CollectedEmail) -> bool {
    let m = &email.message;
    if m.headers.contains("List-Unsubscribe") {
        return true;
    }
    for h in ["Sender", "From", "Reply-To"] {
        if let Some(v) = m.headers.get(h) {
            if header_cue_set().any_match(v) {
                return true;
            }
        }
    }
    // Any two of From / Reply-To / Return-Path disagreeing.
    let addrs: Vec<String> = [m.from_addr(), m.reply_to_addr(), m.return_path_addr()]
        .into_iter()
        .flatten()
        .map(|a| a.to_string())
        .collect();
    if addrs.len() >= 2 && addrs.iter().any(|a| a != &addrs[0]) {
        return true;
    }
    // Body phrases.
    if reflection_phrase_set().any_match(&m.body) {
        return true;
    }
    // System-user senders.
    if let Some(from) = m.from_addr().or_else(|| email.mail_from.clone()) {
        if from.is_system_user() {
            return true;
        }
    }
    false
}

/// The pre-`ets-scan` Layer-4 predicate (lowercase-then-`contains` per
/// phrase), retained verbatim for the equivalence suite and the scan
/// microbenches.
pub fn reflection_mail_legacy(email: &CollectedEmail) -> bool {
    let m = &email.message;
    if m.headers.contains("List-Unsubscribe") {
        return true;
    }
    for h in ["Sender", "From", "Reply-To"] {
        if let Some(v) = m.headers.get(h) {
            let v = v.to_ascii_lowercase();
            if v.contains("bounce") || v.contains("unsubscribe") {
                return true;
            }
        }
    }
    // Any two of From / Reply-To / Return-Path disagreeing.
    let addrs: Vec<String> = [m.from_addr(), m.reply_to_addr(), m.return_path_addr()]
        .into_iter()
        .flatten()
        .map(|a| a.to_string())
        .collect();
    if addrs.len() >= 2 && addrs.iter().any(|a| a != &addrs[0]) {
        return true;
    }
    // Body phrases.
    let body = m.body.to_ascii_lowercase();
    for phrase in REFLECTION_PHRASES {
        if body.contains(phrase) {
            return true;
        }
    }
    // System-user senders.
    if let Some(from) = m.from_addr().or_else(|| email.mail_from.clone()) {
        if from.is_system_user() {
            return true;
        }
    }
    false
}

/// Order-insensitive bag-of-words fingerprint, `None` when the body has
/// fewer than `min_words` distinct words.
pub fn bag_of_words(body: &str, min_words: usize) -> Option<u64> {
    let mut words: Vec<&str> = TokenStream::alnum(body).map(|t| t.text).collect();
    words.sort_unstable();
    words.dedup();
    if words.len() <= min_words {
        return None;
    }
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for b in w.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(0x100000001b3);
    }
    Some(h)
}

fn fnv(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a over an address's canonical `local@domain` rendering, hashed
/// in place — the sender/recipient frequency tables key on this the way
/// the body table keys on `fnv(body)`, so no per-email `to_string()`.
fn fnv_addr(a: &ets_mail::EmailAddress) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let bytes = a
        .local()
        .bytes()
        .chain(std::iter::once(b'@'))
        .chain(a.domain().bytes());
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{TrafficConfig, TrafficGenerator, TrueKind};

    fn run(seed: u64) -> (Vec<crate::traffic::GenEmail>, Vec<FunnelVerdict>) {
        let infra = CollectionInfra::build();
        let gen = TrafficGenerator::new(&infra, TrafficConfig::test_scale(seed));
        let emails = gen.generate();
        let funnel = Funnel::new(&infra);
        let collected: Vec<_> = emails.iter().map(|e| e.collected.clone()).collect();
        let verdicts = funnel.classify_all(&collected);
        (emails, verdicts)
    }

    #[test]
    fn funnel_recall_on_spam_is_high() {
        let (emails, verdicts) = run(11);
        let mut spam_caught = 0usize;
        let mut spam_total = 0usize;
        for (e, v) in emails.iter().zip(&verdicts) {
            if e.truth == TrueKind::Spam {
                spam_total += 1;
                if !v.is_true_typo() {
                    spam_caught += 1;
                }
            }
        }
        let recall = spam_caught as f64 / spam_total as f64;
        assert!(
            recall > 0.95,
            "funnel let {} of {spam_total} spam through",
            spam_total - spam_caught
        );
    }

    #[test]
    fn true_receiver_typos_mostly_survive() {
        let (emails, verdicts) = run(12);
        let mut survived = 0usize;
        let mut total = 0usize;
        for (e, v) in emails.iter().zip(&verdicts) {
            if e.truth == TrueKind::Receiver {
                total += 1;
                if *v == FunnelVerdict::ReceiverTypo {
                    survived += 1;
                }
            }
        }
        assert!(total > 1000);
        let rate = survived as f64 / total as f64;
        // The paper's own manual validation put precision/recall around
        // 80%; the funnel inevitably loses some real typos to Layer 4/5.
        assert!(rate > 0.6, "only {survived}/{total} receiver typos survive");
    }

    #[test]
    fn reflections_are_detected_as_reflections() {
        let (emails, verdicts) = run(13);
        let mut as_reflection = 0usize;
        let mut total = 0usize;
        for (e, v) in emails.iter().zip(&verdicts) {
            if e.truth == TrueKind::Reflection {
                total += 1;
                if *v == FunnelVerdict::Reflection {
                    as_reflection += 1;
                }
            }
        }
        assert!(total > 300);
        assert!(
            as_reflection as f64 / total as f64 > 0.9,
            "{as_reflection}/{total}"
        );
    }

    #[test]
    fn smtp_typos_classified_as_smtp() {
        let (emails, verdicts) = run(14);
        let mut good = 0usize;
        let mut total = 0usize;
        for (e, v) in emails.iter().zip(&verdicts) {
            if e.truth == TrueKind::SmtpTypo {
                total += 1;
                if *v == FunnelVerdict::SmtpTypo {
                    good += 1;
                }
            }
        }
        assert!(total > 30, "total {total}");
        assert!(good as f64 / total as f64 > 0.7, "{good}/{total}");
    }

    #[test]
    fn layer1_catches_forged_senders() {
        let infra = CollectionInfra::build();
        let funnel = Funnel::new(&infra);
        let domain: ets_core::DomainName = "gmaiql.com".parse().unwrap();
        let msg = ets_mail::MessageBuilder::new()
            .raw_from("admin@gmaiql.com")
            .raw_to("victim@gmaiql.com")
            .subject("hello")
            .body("totally legitimate")
            .build();
        let email = CollectedEmail {
            domain: domain.clone(),
            vps_ip: infra.vps_map[&domain],
            date: crate::time::SimDate(0),
            client_helo: "x".to_owned(),
            mail_from: Some("admin@gmaiql.com".parse().unwrap()),
            rcpt_to: "victim@gmaiql.com".parse().unwrap(),
            message: msg,
            smtp_submission: false,
        };
        assert_eq!(funnel.classify_all(&[email])[0], FunnelVerdict::SpamHeader);
    }

    #[test]
    fn layer1_catches_vps_mismatch() {
        let infra = CollectionInfra::build();
        let funnel = Funnel::new(&infra);
        let domain: ets_core::DomainName = "gmaiql.com".parse().unwrap();
        let other: ets_core::DomainName = "hovmail.com".parse().unwrap();
        let email = CollectedEmail {
            domain: domain.clone(),
            vps_ip: infra.vps_map[&other], // wrong VPS
            date: crate::time::SimDate(0),
            client_helo: "x".to_owned(),
            mail_from: Some("someone@elsewhere.example".parse().unwrap()),
            rcpt_to: "victim@gmaiql.com".parse().unwrap(),
            message: ets_mail::Message::new(),
            smtp_submission: false,
        };
        assert_eq!(funnel.classify_all(&[email])[0], FunnelVerdict::SpamHeader);
    }

    #[test]
    fn collaborative_filter_propagates_sender() {
        let infra = CollectionInfra::build();
        let funnel = Funnel::new(&infra);
        let domain: ets_core::DomainName = "gmaiql.com".parse().unwrap();
        let mk = |body: &str, subject: &str| CollectedEmail {
            domain: domain.clone(),
            vps_ip: infra.vps_map[&domain],
            date: crate::time::SimDate(0),
            client_helo: "mail.bulk.example".to_owned(),
            mail_from: Some("spammer@bulk.example".parse().unwrap()),
            rcpt_to: "victim@gmaiql.com".parse().unwrap(),
            message: ets_mail::MessageBuilder::new()
                .raw_from("spammer@bulk.example")
                .raw_to("victim@gmaiql.com")
                .subject(subject)
                .body(body)
                .build(),
            smtp_submission: false,
        };
        // First email: blatant spam (Layer 2). Second: innocuous body from
        // the same sender — Layer 3 must catch it.
        let emails = vec![
            mk(
                "viagra cialis pharmacy lottery winner act now click here http://a http://b http://c",
                "FREE!!!",
            ),
            mk("just checking in about the meeting", "hello"),
        ];
        let v = funnel.classify_all(&emails);
        assert_eq!(v[0], FunnelVerdict::SpamScore);
        assert_eq!(v[1], FunnelVerdict::SpamCollaborative);
    }

    #[test]
    fn reflection_scan_path_matches_legacy() {
        let (emails, _) = run(15);
        for e in &emails {
            assert_eq!(
                reflection_mail(&e.collected),
                reflection_mail_legacy(&e.collected),
                "layer-4 paths disagree on {:?}",
                e.collected.message.headers.get("Subject")
            );
        }
    }

    #[test]
    fn bag_of_words_is_order_insensitive() {
        let words: Vec<String> = (0..25).map(|i| format!("word{i}")).collect();
        let a = words.join(" ");
        let b: String = words.iter().rev().cloned().collect::<Vec<_>>().join(" ");
        assert_eq!(bag_of_words(&a, 20), bag_of_words(&b, 20));
        assert!(bag_of_words("short body", 20).is_none());
        assert_ne!(
            bag_of_words(&a, 20),
            bag_of_words(&format!("{a} extraword"), 20)
        );
    }

    #[test]
    fn frequency_filter_catches_repeated_recipient() {
        let infra = CollectionInfra::build();
        let funnel = Funnel::new(&infra);
        let domain: ets_core::DomainName = "gmaiql.com".parse().unwrap();
        let mut emails = Vec::new();
        for i in 0..25u32 {
            let msg = ets_mail::MessageBuilder::new()
                .raw_from(&format!("sender{i}@site{i}.example"))
                .raw_to("same.person@gmaiql.com")
                .subject(&format!("note {i}"))
                .body(&format!(
                    "unique body number {i} with several distinct words here"
                ))
                .build();
            emails.push(CollectedEmail {
                domain: domain.clone(),
                vps_ip: infra.vps_map[&domain],
                date: crate::time::SimDate(i % 200),
                client_helo: format!("mail{i}.example"),
                mail_from: Some(format!("sender{i}@site{i}.example").parse().unwrap()),
                rcpt_to: "same.person@gmaiql.com".parse().unwrap(),
                message: msg,
                smtp_submission: false,
            });
        }
        let v = funnel.classify_all(&emails);
        assert!(v.iter().all(|&x| x == FunnelVerdict::FrequencyFiltered));
    }
}
