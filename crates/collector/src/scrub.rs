//! The sensitive-information filter (§4.2.2, Table 2, Figure 6).
//!
//! Flags and removes personal identifiers before anything is stored,
//! using the HIPAA identifier list as the baseline. Each identifier type
//! has a dedicated recognizer (credit cards are Luhn-validated and
//! brand-classified; SSNs/EINs/phones/dates are shape-matched; VINs obey
//! the 17-character alphabet; passwords/usernames key on context words).
//! Matches are replaced by `*_|R|_*<label>*<zeroed>*_|R|_*` markers — the
//! exact format of the paper's Figure 2 example — and, as an added
//! precaution, every remaining digit in the text is zeroed.

//!
//! The keyword-cued recognizers (passwords/usernames, zip cues, broad id
//! numbers) scan through compiled `ets-scan` automata: one case-folding
//! pass locates every cue, and the expensive per-candidate validators
//! only run near real hits — no `to_ascii_lowercase` copy of the text or
//! of each candidate's context window. The pre-automaton recognizers are
//! retained behind [`scrub_legacy`] for the equivalence suite and the
//! scan microbenches.

use ets_scan::{contains_fold, PatternSet};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// The identifier types of Table 2 / Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SensitiveKind {
    /// Payment card number (any brand).
    CreditCard,
    /// Social Security number.
    Ssn,
    /// Employer identification number.
    Ein,
    /// Password disclosed in text.
    Password,
    /// Vehicle identification number.
    Vin,
    /// Username/login disclosed in text.
    Username,
    /// ZIP code.
    Zip,
    /// Broad identification numbers (account, member, case ids).
    IdNumber,
    /// Email address.
    Email,
    /// Phone number.
    Phone,
    /// Calendar date.
    Date,
}

impl SensitiveKind {
    /// All kinds, Table-2 row order.
    pub const ALL: [SensitiveKind; 11] = [
        SensitiveKind::CreditCard,
        SensitiveKind::Ssn,
        SensitiveKind::Ein,
        SensitiveKind::Password,
        SensitiveKind::Vin,
        SensitiveKind::Username,
        SensitiveKind::Zip,
        SensitiveKind::IdNumber,
        SensitiveKind::Email,
        SensitiveKind::Phone,
        SensitiveKind::Date,
    ];

    /// Table-2 row label.
    pub fn label(self) -> &'static str {
        match self {
            SensitiveKind::CreditCard => "Credit card number",
            SensitiveKind::Ssn => "Social Security number",
            SensitiveKind::Ein => "Employer id. number",
            SensitiveKind::Password => "Password",
            SensitiveKind::Vin => "Vehicle id. number",
            SensitiveKind::Username => "Username",
            SensitiveKind::Zip => "Zip",
            SensitiveKind::IdNumber => "Identification number",
            SensitiveKind::Email => "Email address",
            SensitiveKind::Phone => "Phone number",
            SensitiveKind::Date => "Date",
        }
    }
}

impl fmt::Display for SensitiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Card brands (Figure 6 tallies these separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CardBrand {
    /// Visa (prefix 4).
    Visa,
    /// Mastercard (51–55, 2221–2720).
    Mastercard,
    /// American Express (34, 37).
    Amex,
    /// Diners Club (300–305, 36, 38).
    DinersClub,
    /// JCB (3528–3589).
    Jcb,
    /// Discover (6011, 65).
    Discover,
    /// Valid Luhn but unrecognized prefix.
    Other,
}

impl CardBrand {
    /// Marker label used in the replacement text.
    pub fn marker(self) -> &'static str {
        match self {
            CardBrand::Visa => "visa",
            CardBrand::Mastercard => "mastercard",
            CardBrand::Amex => "americanexpress",
            CardBrand::DinersClub => "dinersclub",
            CardBrand::Jcb => "jcb",
            CardBrand::Discover => "discover",
            CardBrand::Other => "card",
        }
    }

    fn classify(digits: &[u8]) -> CardBrand {
        let p2 = digits[0] as u32 * 10 + digits[1] as u32;
        let p3 = p2 * 10 + digits[2] as u32;
        let p4 = p3 * 10 + digits[3] as u32;
        match () {
            _ if digits[0] == 4 => CardBrand::Visa,
            _ if (51..=55).contains(&p2) || (2221..=2720).contains(&p4) => CardBrand::Mastercard,
            _ if p2 == 34 || p2 == 37 => CardBrand::Amex,
            _ if (300..=305).contains(&p3) || p2 == 36 || p2 == 38 => CardBrand::DinersClub,
            _ if (3528..=3589).contains(&p4) => CardBrand::Jcb,
            _ if p4 == 6011 || p2 == 65 => CardBrand::Discover,
            _ => CardBrand::Other,
        }
    }
}

/// One match found in the text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// What was found.
    pub kind: SensitiveKind,
    /// Byte range in the original text.
    pub start: usize,
    /// End of the byte range (exclusive).
    pub end: usize,
    /// Card brand, for credit cards.
    pub brand: Option<CardBrand>,
}

/// The scrubbed output.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubResult {
    /// Sanitized text: matches replaced by markers, all digits zeroed.
    pub text: String,
    /// What was found (kinds + original spans).
    pub findings: Vec<Finding>,
}

impl ScrubResult {
    /// Whether anything of `kind` was found.
    pub fn has(&self, kind: SensitiveKind) -> bool {
        self.findings.iter().any(|f| f.kind == kind)
    }

    /// Distinct kinds found.
    pub fn kinds(&self) -> Vec<SensitiveKind> {
        let mut v: Vec<SensitiveKind> = self.findings.iter().map(|f| f.kind).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Scrubs a text: finds every identifier, replaces spans with markers,
/// zeroes remaining digits.
pub fn scrub(text: &str) -> ScrubResult {
    let mut findings = Vec::new();
    find_credit_cards(text, &mut findings);
    find_shapes_fused(text, &mut findings);
    find_vins(text, &mut findings);
    find_emails(text, &mut findings);
    find_context_tokens(text, &mut findings);
    find_zips(text, &mut findings);
    find_id_numbers(text, &mut findings);
    assemble(text, findings)
}

/// The pre-`ets-scan` scrubber: identical recognizer lineup, but the
/// keyword-cued recognizers lowercase the text (and each candidate's
/// context window) and rescan per keyword. Retained as the reference for
/// the equivalence suite and the `scan_scrub` microbench; output is
/// byte-identical with [`scrub`].
pub fn scrub_legacy(text: &str) -> ScrubResult {
    let mut findings = Vec::new();
    find_credit_cards(text, &mut findings);
    find_shape(text, "###-##-####", SensitiveKind::Ssn, &mut findings);
    find_shape(text, "##-#######", SensitiveKind::Ein, &mut findings);
    find_phones(text, &mut findings);
    find_dates(text, &mut findings);
    find_vins(text, &mut findings);
    find_emails(text, &mut findings);
    find_context_tokens_legacy(text, &mut findings);
    find_zips_legacy(text, &mut findings);
    find_id_numbers_legacy(text, &mut findings);
    assemble(text, findings)
}

/// Overlap resolution and text rebuild, shared by both scrub paths.
fn assemble(text: &str, findings: Vec<Finding>) -> ScrubResult {
    // Resolve overlaps: earlier recognizers above have higher priority;
    // stable-sort by (start, priority as inserted) and drop overlaps.
    let mut accepted: Vec<Finding> = Vec::new();
    let mut order: Vec<(usize, Finding)> = findings.into_iter().enumerate().collect();
    order.sort_by_key(|(i, f)| (f.start, *i));
    for (_, f) in order {
        if accepted
            .iter()
            .all(|a| f.end <= a.start || f.start >= a.end)
        {
            accepted.push(f);
        }
    }
    accepted.sort_by_key(|f| f.start);

    // Rebuild the text, appending in place (no per-segment strings).
    let mut out = String::with_capacity(text.len());
    let mut cursor = 0usize;
    for f in &accepted {
        push_zero_digits(&mut out, &text[cursor..f.start]);
        let label = match (f.kind, f.brand) {
            (SensitiveKind::CreditCard, Some(b)) => b.marker(),
            (k, _) => marker_label(k),
        };
        out.push_str("*_|R|_*");
        out.push_str(label);
        out.push('*');
        push_zero_and_mask(&mut out, &text[f.start..f.end]);
        out.push_str("*_|R|_*");
        cursor = f.end;
    }
    push_zero_digits(&mut out, &text[cursor..]);
    ScrubResult {
        text: out,
        findings: accepted,
    }
}

fn marker_label(k: SensitiveKind) -> &'static str {
    match k {
        SensitiveKind::CreditCard => "card",
        SensitiveKind::Ssn => "ssn",
        SensitiveKind::Ein => "ein",
        SensitiveKind::Password => "password",
        SensitiveKind::Vin => "vin",
        SensitiveKind::Username => "username",
        SensitiveKind::Zip => "zip",
        SensitiveKind::IdNumber => "idnumber",
        SensitiveKind::Email => "email",
        SensitiveKind::Phone => "phone",
        SensitiveKind::Date => "date",
    }
}

fn push_zero_digits(out: &mut String, s: &str) {
    for c in s.chars() {
        out.push(if c.is_ascii_digit() { '0' } else { c });
    }
}

/// Zeroes digits and masks letters (used inside markers so even
/// non-numeric identifiers are unrecoverable).
fn push_zero_and_mask(out: &mut String, s: &str) {
    for c in s.chars() {
        out.push(if c.is_ascii_digit() {
            '0'
        } else if c.is_ascii_alphabetic() {
            'x'
        } else {
            c
        });
    }
}

fn is_boundary(bytes: &[u8], idx: usize) -> bool {
    if idx == 0 || idx >= bytes.len() {
        return true;
    }
    !bytes[idx].is_ascii_alphanumeric() || !bytes[idx - 1].is_ascii_alphanumeric()
}

/// Luhn checksum over a digit sequence.
pub fn luhn_valid(digits: &[u8]) -> bool {
    if digits.is_empty() {
        return false;
    }
    let mut sum = 0u32;
    for (i, &d) in digits.iter().rev().enumerate() {
        let mut v = d as u32;
        if i % 2 == 1 {
            v *= 2;
            if v > 9 {
                v -= 9;
            }
        }
        sum += v;
    }
    sum.is_multiple_of(10)
}

fn find_credit_cards(text: &str, out: &mut Vec<Finding>) {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if !bytes[i].is_ascii_digit() || !is_boundary(bytes, i) {
            i += 1;
            continue;
        }
        // Collect up to 19 digits allowing single spaces/dashes between
        // groups.
        let mut digits: Vec<u8> = Vec::with_capacity(19);
        let mut j = i;
        let mut last_digit_end = i;
        while j < bytes.len() && digits.len() < 19 {
            let c = bytes[j];
            if c.is_ascii_digit() {
                digits.push(c - b'0');
                j += 1;
                last_digit_end = j;
            } else if (c == b' ' || c == b'-')
                && j + 1 < bytes.len()
                && bytes[j + 1].is_ascii_digit()
                && !digits.is_empty()
            {
                j += 1;
            } else {
                break;
            }
        }
        // Must end at a boundary (not run into more digits).
        let clean_end = last_digit_end >= bytes.len() || !bytes[last_digit_end].is_ascii_digit();
        if digits.len() >= 13 && clean_end && luhn_valid(&digits) {
            out.push(Finding {
                kind: SensitiveKind::CreditCard,
                start: i,
                end: last_digit_end,
                brand: Some(CardBrand::classify(&digits)),
            });
            i = last_digit_end;
        } else {
            // skip this digit run entirely
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
}

/// Matches a literal shape where `#` is a digit and other characters match
/// themselves, requiring word boundaries at both ends.
fn find_shape(text: &str, shape: &str, kind: SensitiveKind, out: &mut Vec<Finding>) {
    let bytes = text.as_bytes();
    let pat = shape.as_bytes();
    if bytes.len() < pat.len() {
        return;
    }
    for start in 0..=bytes.len() - pat.len() {
        if !is_boundary(bytes, start) {
            continue;
        }
        let end = start + pat.len();
        if !is_boundary(bytes, end) {
            continue;
        }
        let m = pat.iter().enumerate().all(|(k, &p)| {
            let b = bytes[start + k];
            if p == b'#' {
                b.is_ascii_digit()
            } else {
                b == p
            }
        });
        if m {
            out.push(Finding {
                kind,
                start,
                end,
                brand: None,
            });
        }
    }
}

fn find_phones(text: &str, out: &mut Vec<Finding>) {
    // Shapes seen in the corpora, most specific first.
    for shape in [
        "+#.##########",
        "(###) ###-####",
        "(###)###-####",
        "###-###-####",
        "###.###.####",
        "+# ### ### ####",
    ] {
        find_shape(text, shape, SensitiveKind::Phone, out);
    }
}

fn find_dates(text: &str, out: &mut Vec<Finding>) {
    for shape in [
        "####-##-##",
        "##/##/####",
        "#/##/####",
        "##/#/####",
        "##/##/##",
        "##/##",
    ] {
        find_shape(text, shape, SensitiveKind::Date, out);
    }
}

/// The 14 fixed shapes of the SSN/EIN/phone/date recognizers, in legacy
/// scan order. The index is the overlap-resolution priority: `assemble`
/// breaks span ties by insertion order, so the fused scanner must replay
/// findings grouped by shape exactly as the per-shape loops inserted
/// them.
const SHAPES: [(&str, SensitiveKind); 14] = [
    ("###-##-####", SensitiveKind::Ssn),
    ("##-#######", SensitiveKind::Ein),
    ("+#.##########", SensitiveKind::Phone),
    ("(###) ###-####", SensitiveKind::Phone),
    ("(###)###-####", SensitiveKind::Phone),
    ("###-###-####", SensitiveKind::Phone),
    ("###.###.####", SensitiveKind::Phone),
    ("+# ### ### ####", SensitiveKind::Phone),
    ("####-##-##", SensitiveKind::Date),
    ("##/##/####", SensitiveKind::Date),
    ("#/##/####", SensitiveKind::Date),
    ("##/#/####", SensitiveKind::Date),
    ("##/##/##", SensitiveKind::Date),
    ("##/##", SensitiveKind::Date),
];

/// `SHAPES` indices grouped by first byte, the dispatch key: almost every
/// text position starts with none of digit/`(`/`+` and falls through
/// after a single class test, so one pass replaces fourteen.
const DIGIT_SHAPES: [u8; 10] = [0, 1, 5, 6, 8, 9, 10, 11, 12, 13];
const PAREN_SHAPES: [u8; 2] = [3, 4];
const PLUS_SHAPES: [u8; 2] = [2, 7];

/// All fourteen shape recognizers in a single left-to-right pass,
/// byte-identical to running [`find_shape`] once per shape (the loop
/// [`scrub_legacy`] still runs). Matches are collected as
/// `(shape, start)` and stable-replayed in that order to reproduce the
/// legacy insertion sequence.
fn find_shapes_fused(text: &str, out: &mut Vec<Finding>) {
    let bytes = text.as_bytes();
    let mut hits: Vec<(u8, usize)> = Vec::new();
    let try_shapes = |candidates: &[u8], start: usize, hits: &mut Vec<(u8, usize)>| {
        for &si in candidates {
            let pat = SHAPES[si as usize].0.as_bytes();
            let end = start + pat.len();
            if end > bytes.len() || !is_boundary(bytes, end) {
                continue;
            }
            let m = pat.iter().enumerate().all(|(k, &p)| {
                let b = bytes[start + k];
                if p == b'#' {
                    b.is_ascii_digit()
                } else {
                    b == p
                }
            });
            if m {
                hits.push((si, start));
            }
        }
    };
    for start in 0..bytes.len() {
        let candidates: &[u8] = match bytes[start] {
            b'0'..=b'9' => &DIGIT_SHAPES,
            b'(' => &PAREN_SHAPES,
            b'+' => &PLUS_SHAPES,
            _ => continue,
        };
        if !is_boundary(bytes, start) {
            continue;
        }
        try_shapes(candidates, start, &mut hits);
    }
    // Scanning left to right yields ascending starts per shape, so this
    // sort is exactly "group by shape, keep position order".
    hits.sort_unstable();
    for (si, start) in hits {
        let (shape, kind) = SHAPES[si as usize];
        out.push(Finding {
            kind,
            start,
            end: start + shape.len(),
            brand: None,
        });
    }
}

fn find_vins(text: &str, out: &mut Vec<Finding>) {
    let bytes = text.as_bytes();
    if bytes.len() < 17 {
        return;
    }
    for start in 0..=bytes.len() - 17 {
        if !is_boundary(bytes, start) || !is_boundary(bytes, start + 17) {
            continue;
        }
        let slice = &bytes[start..start + 17];
        let valid = slice.iter().all(|&c| {
            (c.is_ascii_digit() || c.is_ascii_uppercase()) && !matches!(c, b'I' | b'O' | b'Q')
        });
        if !valid {
            continue;
        }
        let n_digits = slice.iter().filter(|c| c.is_ascii_digit()).count();
        let n_alpha = 17 - n_digits;
        // Real VINs mix letters and digits heavily.
        if n_digits >= 5 && n_alpha >= 4 {
            out.push(Finding {
                kind: SensitiveKind::Vin,
                start,
                end: start + 17,
                brand: None,
            });
        }
    }
}

fn find_emails(text: &str, out: &mut Vec<Finding>) {
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'@' {
            continue;
        }
        // Expand left over local-part chars.
        let mut s = i;
        while s > 0 {
            let c = bytes[s - 1];
            if c.is_ascii_alphanumeric() || matches!(c, b'.' | b'_' | b'-' | b'+') {
                s -= 1;
            } else {
                break;
            }
        }
        // Expand right over domain chars.
        let mut e = i + 1;
        while e < bytes.len() {
            let c = bytes[e];
            if c.is_ascii_alphanumeric() || matches!(c, b'.' | b'-') {
                e += 1;
            } else {
                break;
            }
        }
        // Trim trailing dots (sentence punctuation).
        while e > i + 1 && bytes[e - 1] == b'.' {
            e -= 1;
        }
        if s < i && e > i + 1 && text[i + 1..e].contains('.') {
            out.push(Finding {
                kind: SensitiveKind::Email,
                start: s,
                end: e,
                brand: None,
            });
        }
    }
}

/// Credential context keywords, in legacy scan order (password cues
/// before username cues — insertion order is overlap-resolution
/// priority, so the compiled set must replay it exactly).
const CONTEXT_KEYWORDS: [(&str, SensitiveKind); 10] = [
    ("password:", SensitiveKind::Password),
    ("password is", SensitiveKind::Password),
    ("pass:", SensitiveKind::Password),
    ("pwd:", SensitiveKind::Password),
    ("passwd:", SensitiveKind::Password),
    ("username:", SensitiveKind::Username),
    ("user name:", SensitiveKind::Username),
    ("login:", SensitiveKind::Username),
    ("user id:", SensitiveKind::Username),
    ("username is", SensitiveKind::Username),
];

fn context_cue_set() -> &'static PatternSet<SensitiveKind> {
    static SET: OnceLock<PatternSet<SensitiveKind>> = OnceLock::new();
    SET.get_or_init(|| PatternSet::compile(&CONTEXT_KEYWORDS))
}

/// Id-number cue keywords (searched in the window before a digit run).
const ID_CUES: [&str; 9] = [
    "account", "member", "case", "id", "no.", "no:", "number", "#", "ref",
];

fn id_cue_set() -> &'static PatternSet<()> {
    static SET: OnceLock<PatternSet<()>> = OnceLock::new();
    SET.get_or_init(|| {
        let tagged: Vec<(&str, ())> = ID_CUES.iter().map(|c| (*c, ())).collect();
        PatternSet::compile(&tagged)
    })
}

fn zip_cue_set() -> &'static PatternSet<()> {
    static SET: OnceLock<PatternSet<()>> = OnceLock::new();
    SET.get_or_init(|| PatternSet::compile(&[("zip", ())]))
}

/// Context-keyword recognizers for passwords and usernames: one automaton
/// pass finds every cue; matches replay in (keyword, position) order so
/// findings are inserted exactly as the legacy per-keyword loop did.
fn find_context_tokens(text: &str, out: &mut Vec<Finding>) {
    let set = context_cue_set();
    let mut cues: Vec<(usize, usize)> = set.find_all(text).map(|m| (m.pattern, m.end)).collect();
    if cues.is_empty() {
        return;
    }
    cues.sort_unstable();
    for (pattern, kw_end) in cues {
        let kind = set.tag(pattern);
        // The secret is the next non-space token.
        let rest = &text[kw_end..];
        let token_start_rel = rest.len() - rest.trim_start().len();
        let token_start = kw_end + token_start_rel;
        let token: &str = rest
            .trim_start()
            .split(|c: char| c.is_whitespace() || c == ',' || c == ';')
            .next()
            .unwrap_or("");
        let token = token.trim_end_matches(['.', ')', '"', '\'']);
        if !token.is_empty() && token.len() >= 3 {
            out.push(Finding {
                kind,
                start: token_start,
                end: token_start + token.len(),
                brand: None,
            });
        }
    }
}

/// The pre-`ets-scan` credential recognizer (lowercase text, rescan per
/// keyword), retained for the equivalence suite.
fn find_context_tokens_legacy(text: &str, out: &mut Vec<Finding>) {
    let lower = text.to_ascii_lowercase();
    for (kw, kind) in CONTEXT_KEYWORDS {
        let mut from = 0usize;
        while let Some(pos) = lower[from..].find(kw) {
            let kw_end = from + pos + kw.len();
            // The secret is the next non-space token.
            let rest = &text[kw_end..];
            let token_start_rel = rest.len() - rest.trim_start().len();
            let token_start = kw_end + token_start_rel;
            let token: &str = rest
                .trim_start()
                .split(|c: char| c.is_whitespace() || c == ',' || c == ';')
                .next()
                .unwrap_or("");
            let token = token.trim_end_matches(['.', ')', '"', '\'']);
            if !token.is_empty() && token.len() >= 3 {
                out.push(Finding {
                    kind,
                    start: token_start,
                    end: token_start + token.len(),
                    brand: None,
                });
            }
            from = kw_end;
        }
    }
}

fn find_zips(text: &str, out: &mut Vec<Finding>) {
    // A bare 5-digit token; to limit false positives require either
    // ZIP+4 shape or a nearby address-ish cue (comma-space before, or the
    // words zip / [A-Z]{2} state code immediately before).
    let bytes = text.as_bytes();
    find_shape(text, "#####-####", SensitiveKind::Zip, out);
    if bytes.len() < 5 {
        return;
    }
    // One automaton pass decides whether a "zip" cue can fire anywhere;
    // candidates then fold their prefix window byte-by-byte instead of
    // allocating a lowercased copy per 5-digit run.
    let has_zip_cue = zip_cue_set().any_match(text);
    for start in 0..=bytes.len() - 5 {
        if !is_boundary(bytes, start) || !is_boundary(bytes, start + 5) {
            continue;
        }
        if !bytes[start..start + 5].iter().all(u8::is_ascii_digit) {
            continue;
        }
        // cue: preceding two uppercase letters + space ("PA 15213") or the
        // word "zip" within the preceding 8 chars.
        let prefix = text
            .get(start.saturating_sub(8)..start)
            .or_else(|| text.get(start.saturating_sub(9)..start))
            .or_else(|| text.get(start.saturating_sub(10)..start))
            .unwrap_or("");
        let state_cue = prefix
            .trim_end()
            .chars()
            .rev()
            .take(2)
            .all(|c| c.is_ascii_uppercase())
            && prefix.trim_end().len() >= 2;
        let zip_cue = has_zip_cue && contains_fold(prefix, "zip");
        if state_cue || zip_cue {
            out.push(Finding {
                kind: SensitiveKind::Zip,
                start,
                end: start + 5,
                brand: None,
            });
        }
    }
}

/// The pre-`ets-scan` ZIP recognizer (lowercase allocation per candidate
/// prefix), retained for the equivalence suite.
fn find_zips_legacy(text: &str, out: &mut Vec<Finding>) {
    let bytes = text.as_bytes();
    find_shape(text, "#####-####", SensitiveKind::Zip, out);
    if bytes.len() < 5 {
        return;
    }
    for start in 0..=bytes.len() - 5 {
        if !is_boundary(bytes, start) || !is_boundary(bytes, start + 5) {
            continue;
        }
        if !bytes[start..start + 5].iter().all(u8::is_ascii_digit) {
            continue;
        }
        let prefix = text
            .get(start.saturating_sub(8)..start)
            .or_else(|| text.get(start.saturating_sub(9)..start))
            .or_else(|| text.get(start.saturating_sub(10)..start))
            .unwrap_or("");
        let state_cue = prefix
            .trim_end()
            .chars()
            .rev()
            .take(2)
            .all(|c| c.is_ascii_uppercase())
            && prefix.trim_end().len() >= 2;
        let zip_cue = prefix.to_ascii_lowercase().contains("zip");
        if state_cue || zip_cue {
            out.push(Finding {
                kind: SensitiveKind::Zip,
                start,
                end: start + 5,
                brand: None,
            });
        }
    }
}

/// Broad identification numbers: digit runs of 6–12 near id-ish keywords
/// (account, member, case, id, no., #) — the paper notes this recognizer
/// is deliberately broad and correspondingly noisy.
fn find_id_numbers(text: &str, out: &mut Vec<Finding>) {
    // If no cue keyword occurs anywhere in the text, no prefix window can
    // contain one: one early automaton pass (early exit on first hit)
    // replaces the per-call lowercase allocation entirely.
    if !id_cue_set().any_match(text) {
        return;
    }
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if !bytes[i].is_ascii_digit() || !is_boundary(bytes, i) {
            i += 1;
            continue;
        }
        let mut j = i;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        let len = j - i;
        if (6..=12).contains(&len) && is_boundary(bytes, j) {
            // ASCII folding preserves byte offsets and char boundaries, so
            // windows into the raw text equal the legacy windows into the
            // lowercased copy; the case-folded automaton supplies the
            // case-insensitive `contains`.
            let prefix = text
                .get(i.saturating_sub(16)..i)
                .or_else(|| text.get(i.saturating_sub(17)..i))
                .or_else(|| text.get(i.saturating_sub(18)..i))
                .unwrap_or("");
            if id_cue_set().any_match(prefix) {
                out.push(Finding {
                    kind: SensitiveKind::IdNumber,
                    start: i,
                    end: j,
                    brand: None,
                });
            }
        }
        i = j;
    }
}

/// The pre-`ets-scan` id-number recognizer (lowercase the whole text,
/// nine `contains` probes per digit run), retained for the equivalence
/// suite and microbenches.
fn find_id_numbers_legacy(text: &str, out: &mut Vec<Finding>) {
    let lower = text.to_ascii_lowercase();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if !bytes[i].is_ascii_digit() || !is_boundary(bytes, i) {
            i += 1;
            continue;
        }
        let mut j = i;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        let len = j - i;
        if (6..=12).contains(&len) && is_boundary(bytes, j) {
            let prefix = lower
                .get(i.saturating_sub(16)..i)
                .or_else(|| lower.get(i.saturating_sub(17)..i))
                .or_else(|| lower.get(i.saturating_sub(18)..i))
                .unwrap_or("");
            let cue = ID_CUES.iter().any(|k| prefix.contains(k));
            if cue {
                out.push(Finding {
                    kind: SensitiveKind::IdNumber,
                    start: i,
                    end: j,
                    brand: None,
                });
            }
        }
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luhn_known_values() {
        // The paper's Figure 2 Amex number.
        let digits: Vec<u8> = "371385129301004".bytes().map(|b| b - b'0').collect();
        assert!(luhn_valid(&digits));
        // Classic test number.
        let visa: Vec<u8> = "4111111111111111".bytes().map(|b| b - b'0').collect();
        assert!(luhn_valid(&visa));
        let mut bad = visa.clone();
        bad[15] = (bad[15] + 1) % 10;
        assert!(!luhn_valid(&bad));
    }

    #[test]
    fn figure2_example_is_reproduced() {
        // The paper's running example: an Amex number and an expiry date.
        let input = "Amex 371385129301004 Exp 06/03\nBook us 3 rooms and make sure that we can have 2 beds in one of the rooms.";
        let r = scrub(input);
        assert!(r.has(SensitiveKind::CreditCard));
        assert!(r
            .text
            .contains("*_|R|_*americanexpress*000000000000000*_|R|_*"));
        assert!(r.has(SensitiveKind::Date), "Exp 06/03 is a ##/## date");
        // every digit zeroed
        assert!(r.text.contains("Book us 0 rooms"));
        assert!(r.text.contains("0 beds"));
        assert!(!r.text.contains("371385129301004"));
    }

    #[test]
    fn card_brands_classified() {
        let cases = [
            ("4111111111111111", CardBrand::Visa),
            ("5500005555555559", CardBrand::Mastercard),
            ("371385129301004", CardBrand::Amex),
            ("30569309025904", CardBrand::DinersClub),
            ("3530111333300000", CardBrand::Jcb),
            ("6011000990139424", CardBrand::Discover),
        ];
        for (num, brand) in cases {
            let r = scrub(&format!("card {num} ok"));
            let f = r
                .findings
                .iter()
                .find(|f| f.kind == SensitiveKind::CreditCard)
                .unwrap_or_else(|| panic!("{num} not detected"));
            assert_eq!(f.brand, Some(brand), "{num}");
        }
    }

    #[test]
    fn card_with_separators() {
        let r = scrub("pay with 4111 1111 1111 1111 please");
        assert!(r.has(SensitiveKind::CreditCard));
        assert!(!r.text.contains("1111"));
    }

    #[test]
    fn non_luhn_digit_runs_are_not_cards() {
        let r = scrub("tracking 4111111111111112 code");
        assert!(!r.has(SensitiveKind::CreditCard));
        // but digits are still zeroed
        assert!(r.text.contains("0000000000000000"));
    }

    #[test]
    fn ssn_and_ein() {
        let r = scrub("SSN 078-05-1120 and EIN 12-3456789.");
        assert!(r.has(SensitiveKind::Ssn));
        assert!(r.has(SensitiveKind::Ein));
        assert!(!r.text.contains("078-05-1120"));
    }

    #[test]
    fn ssn_requires_boundaries() {
        let r = scrub("id X078-05-11209 maybe");
        assert!(!r.has(SensitiveKind::Ssn));
    }

    #[test]
    fn phones_and_dates() {
        let r = scrub("call (412) 555-1234 before 12/25/2016 or 2016-12-25");
        assert!(r.has(SensitiveKind::Phone));
        assert_eq!(
            r.findings
                .iter()
                .filter(|f| f.kind == SensitiveKind::Date)
                .count(),
            2
        );
    }

    #[test]
    fn vin_detection() {
        let r = scrub("my car vin 1HGCM82633A004352 got towed");
        assert!(r.has(SensitiveKind::Vin));
        // lowercase or I/O/Q sequences are not VINs
        let r2 = scrub("token 1hgcm82633a004352 here");
        assert!(!r2.has(SensitiveKind::Vin));
    }

    #[test]
    fn email_detection_and_removal() {
        let r = scrub("write to alice.liddell+work@example.co.uk.");
        assert!(r.has(SensitiveKind::Email));
        assert!(!r.text.contains("alice.liddell"));
        assert!(r.text.contains("*_|R|_*email*"));
    }

    #[test]
    fn password_and_username_context() {
        let r = scrub("Your username: jdoe42 and password: hunter2! ok");
        assert!(r.has(SensitiveKind::Username));
        assert!(r.has(SensitiveKind::Password));
        assert!(!r.text.contains("hunter2"));
        assert!(!r.text.contains("jdoe42"));
    }

    #[test]
    fn zip_needs_cue() {
        assert!(scrub("Pittsburgh, PA 15213").has(SensitiveKind::Zip));
        assert!(scrub("zip 15213").has(SensitiveKind::Zip));
        assert!(scrub("15213-1234 plus four").has(SensitiveKind::Zip));
        assert!(!scrub("order 15213 shipped").has(SensitiveKind::Zip));
    }

    #[test]
    fn id_numbers_are_broad() {
        assert!(scrub("account no. 88273641").has(SensitiveKind::IdNumber));
        assert!(scrub("Member ID 123456").has(SensitiveKind::IdNumber));
        assert!(!scrub("launched in 123456 units").has(SensitiveKind::IdNumber));
    }

    #[test]
    fn overlap_resolution_prefers_cards() {
        // A card number could also look like an id number near "account".
        let r = scrub("account 4111111111111111");
        assert!(r.has(SensitiveKind::CreditCard));
        assert!(!r.has(SensitiveKind::IdNumber));
    }

    #[test]
    fn clean_text_untouched_except_digits() {
        let r = scrub("hello world, nothing here");
        assert!(r.findings.is_empty());
        assert_eq!(r.text, "hello world, nothing here");
    }

    #[test]
    fn all_digits_zeroed_after_scrub() {
        let r = scrub("meeting at 3pm with 12 people, card 4111111111111111");
        assert!(r
            .text
            .chars()
            .filter(|c| c.is_ascii_digit())
            .all(|c| c == '0'));
    }

    #[test]
    fn empty_input() {
        let r = scrub("");
        assert!(r.findings.is_empty());
        assert_eq!(r.text, "");
    }
}
