//! # ets-collector
//!
//! The Section-4 measurement apparatus: everything between "an SMTP
//! transaction completed on a typo domain" and "a number in the paper".
//!
//! * [`time`] — the simulated study clock (June 4 2016 – January 15 2017).
//! * [`infra`] — the 76 registered study domains, their VPS mapping, and
//!   collection windows with outages (the gaps visible in Figures 3/4).
//! * [`corpus`] — synthetic labeled corpora: an Enron-like ham corpus with
//!   planted sensitive identifiers (Table 2's ground truth) and the four
//!   spam-evaluation datasets of Table 3.
//! * [`spamscore`] — the SpamAssassin stand-in: a rule-and-token scorer
//!   with local-mode thresholding.
//! * [`extract`] — Textract stand-in: per-format attachment text
//!   extraction (including simulated OCR).
//! * [`scrub`] — the sensitive-information filter: dedicated recognizers
//!   for the HIPAA identifier list, salted-hash replacement, digit
//!   zeroing.
//! * [`crypto`] — ChaCha20 (RFC 8439) storage encryption.
//! * [`traffic`] — the workload generator driven by the typing-error
//!   model: spam campaigns, receiver/reflection/SMTP typos.
//! * [`pipeline`] — the Figure-2 end-to-end processing pipeline
//!   (tokenize → extract → scrub → encrypt).
//! * [`funnel`] — the five-layer spam/typo classification funnel.
//! * [`stream`] — the bounded-memory streaming driver: per-day traffic
//!   generation and feature extraction fanned out through
//!   `ets_parallel::stream_map`, committed in calendar order.
//! * [`analysis`] — yearly projections, per-domain concentration,
//!   persistence, attachment and sensitive-info statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod corpus;
pub mod crypto;
pub mod extract;
pub mod funnel;
pub mod infra;
pub mod pipeline;
pub mod scrub;
pub mod spamscore;
pub mod stream;
pub mod time;
pub mod traffic;

pub use funnel::{Funnel, FunnelVerdict};
pub use infra::{CollectedEmail, CollectionInfra};
pub use stream::{stream_collect, EmailSink, StreamFunnel};
pub use time::SimDate;
pub use traffic::{TrafficConfig, TrafficGenerator};
