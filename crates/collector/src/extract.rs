//! The Textract stand-in: attachment text extraction (§4.2.2).
//!
//! The pipeline runs every attachment through text extraction so the
//! scrubber can see inside documents — the paper's Textract even OCRs
//! images. The simulated attachment formats wrap their text in simple
//! containers; each extractor understands one container, and image OCR is
//! modeled as a lossy extraction that recovers embedded text only when an
//! OCR marker is present.

//!
//! Extraction is zero-copy on the hot path: the simulated containers
//! store valid UTF-8, so [`Extraction`] borrows straight from the
//! attachment bytes (a copy is made only when `from_utf8_lossy` actually
//! has to repair invalid sequences), and [`full_text`] returns the
//! message body itself unless an attachment contributes text.

use ets_mail::Attachment;
use std::borrow::Cow;

/// Simulated container magic bytes.
pub const DOC_MAGIC: &[u8] = b"\xD0\xCF\x11\xE0ETSDOC:";
/// Zip-based office container (docx/xlsx/pptx).
pub const OOXML_MAGIC: &[u8] = b"PK\x03\x04ETSOOXML:";
/// PDF container.
pub const PDF_MAGIC: &[u8] = b"%PDF-1.4 ETSPDF:";
/// Image container; text after the marker is "visible in the image".
pub const IMG_MAGIC: &[u8] = b"\x89IMGETSOCR:";
/// Archive container (never extracted; dropped in Layer 2).
pub const ZIP_MAGIC: &[u8] = b"PK\x03\x04ETSZIP";

/// How the text came out. Borrows from the attachment bytes whenever the
/// payload is already valid UTF-8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Extraction<'a> {
    /// Full text recovered.
    Text(Cow<'a, str>),
    /// OCR recovered text from an image (lossy in principle).
    Ocr(Cow<'a, str>),
    /// Format known, but nothing extractable (e.g. image without text).
    Empty,
    /// Unknown or unsupported container.
    Unsupported,
}

impl<'a> Extraction<'a> {
    /// The extracted text, if any.
    pub fn text(&self) -> Option<&str> {
        match self {
            Extraction::Text(t) | Extraction::Ocr(t) => Some(t.as_ref()),
            _ => None,
        }
    }
}

/// Extracts text from one attachment, dispatching on content.
pub fn extract(attachment: &Attachment) -> Extraction<'_> {
    let data = &attachment.data;
    for (magic, ocr) in [
        (DOC_MAGIC, false),
        (OOXML_MAGIC, false),
        (PDF_MAGIC, false),
        (IMG_MAGIC, true),
    ] {
        if let Some(rest) = data.strip_prefix(magic) {
            // Emptiness is decided on the `Cow` itself; nothing is copied
            // unless the payload contains invalid UTF-8.
            let text = String::from_utf8_lossy(rest);
            if text.trim().is_empty() {
                return Extraction::Empty;
            }
            return if ocr {
                Extraction::Ocr(text)
            } else {
                Extraction::Text(text)
            };
        }
    }
    if data.starts_with(ZIP_MAGIC) {
        return Extraction::Unsupported;
    }
    // Plain text: printable UTF-8.
    match std::str::from_utf8(data) {
        Ok(s) if !s.trim().is_empty() => Extraction::Text(Cow::Borrowed(s)),
        Ok(_) => Extraction::Empty,
        Err(_) => Extraction::Unsupported,
    }
}

/// Builders for the simulated containers (used by the traffic generator
/// and the corpora).
pub mod build {
    use super::*;

    /// A legacy `.doc`-style attachment.
    pub fn doc(filename: &str, text: &str) -> Attachment {
        let mut data = DOC_MAGIC.to_vec();
        data.extend_from_slice(text.as_bytes());
        Attachment::new(filename, "application/msword", data)
    }

    /// An OOXML (`.docx`/`.xlsx`/`.pptx`) attachment.
    pub fn ooxml(filename: &str, text: &str) -> Attachment {
        let mut data = OOXML_MAGIC.to_vec();
        data.extend_from_slice(text.as_bytes());
        Attachment::new(
            filename,
            "application/vnd.openxmlformats-officedocument",
            data,
        )
    }

    /// A PDF attachment.
    pub fn pdf(filename: &str, text: &str) -> Attachment {
        let mut data = PDF_MAGIC.to_vec();
        data.extend_from_slice(text.as_bytes());
        Attachment::new(filename, "application/pdf", data)
    }

    /// An image; `visible_text` is what OCR can recover (empty = photo).
    pub fn image(filename: &str, visible_text: &str) -> Attachment {
        let mut data = IMG_MAGIC.to_vec();
        data.extend_from_slice(visible_text.as_bytes());
        Attachment::new(filename, "image/jpeg", data)
    }

    /// An archive (zip/rar) — Layer 2 drops these unopened.
    pub fn archive(filename: &str, payload: &[u8]) -> Attachment {
        let mut data = ZIP_MAGIC.to_vec();
        data.extend_from_slice(payload);
        Attachment::new(filename, "application/zip", data)
    }

    /// A plain-text attachment.
    pub fn txt(filename: &str, text: &str) -> Attachment {
        Attachment::new(filename, "text/plain", text.as_bytes().to_vec())
    }
}

/// Extracts and concatenates the text of a whole message: body plus every
/// attachment the extractors understand. Borrows the body unchanged when
/// no attachment contributes text — the common case in the generated
/// traffic — so callers that only read pay no allocation.
pub fn full_text(msg: &ets_mail::Message) -> Cow<'_, str> {
    let mut out: Option<String> = None;
    for a in &msg.attachments {
        if let Some(t) = extract(a).text() {
            let buf = out.get_or_insert_with(|| msg.body.clone());
            buf.push('\n');
            buf.push_str(t);
        }
    }
    match out {
        Some(s) => Cow::Owned(s),
        None => Cow::Borrowed(&msg.body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_and_ooxml_extract() {
        let a = build::doc("resume.doc", "John Doe SSN 078-05-1120");
        assert_eq!(
            extract(&a),
            Extraction::Text("John Doe SSN 078-05-1120".into())
        );
        let b = build::ooxml("cv.docx", "curriculum vitae");
        assert_eq!(extract(&b), Extraction::Text("curriculum vitae".into()));
    }

    #[test]
    fn pdf_extracts() {
        let a = build::pdf("visa.pdf", "passport number 123456789");
        assert!(matches!(extract(&a), Extraction::Text(t) if t.contains("passport")));
    }

    #[test]
    fn image_ocr() {
        let with_text = build::image("scan.jpg", "Amex 371385129301004");
        assert!(matches!(extract(&with_text), Extraction::Ocr(t) if t.contains("371385129301004")));
        let photo = build::image("cat.jpg", "");
        assert_eq!(extract(&photo), Extraction::Empty);
    }

    #[test]
    fn archives_unsupported() {
        let a = build::archive("malware.zip", &[1, 2, 3]);
        assert_eq!(extract(&a), Extraction::Unsupported);
    }

    #[test]
    fn plain_text_passthrough() {
        let a = build::txt("notes.txt", "plain notes");
        assert_eq!(extract(&a), Extraction::Text("plain notes".into()));
    }

    #[test]
    fn binary_garbage_unsupported() {
        let a =
            ets_mail::Attachment::new("x.bin", "application/octet-stream", vec![0xFF, 0xFE, 0x00]);
        assert_eq!(extract(&a), Extraction::Unsupported);
    }

    #[test]
    fn full_text_concatenates() {
        let mut m = ets_mail::Message::new();
        m.body = "body text".into();
        m.attachments.push(build::pdf("a.pdf", "pdf text"));
        m.attachments.push(build::archive("z.zip", b"x"));
        m.attachments.push(build::image("i.jpg", "ocr text"));
        let t = full_text(&m);
        assert!(t.contains("body text"));
        assert!(t.contains("pdf text"));
        assert!(t.contains("ocr text"));
        assert!(!t.contains('\u{FFFD}'));
    }
}
