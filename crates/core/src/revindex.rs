//! Reverse DL-1 index: "which targets is domain *d* a typo of?" in
//! O(len) per query.
//!
//! SymSpell-style deletion-neighborhood keying. Every string `x` is keyed
//! by the FNV hashes of `x` itself and of each of its single-deletion
//! variants (all hashed over `tld ++ 0xFF ++ variant` so TLDs never mix).
//! If `DL(s, t) ≤ 1`, the deletion neighborhoods of `s` and `t`
//! intersect — a deletion of `s` hits `t`'s own key, an addition hits
//! `s`'s own key, and substitutions/transpositions share the variant with
//! the changed region deleted. So a query hashes its O(len) neighborhood,
//! unions the matching buckets, and verifies each candidate exactly; hash
//! collisions only ever cost an extra verification, never a wrong answer,
//! which keeps results deterministic.
//!
//! Targets are stored in a [`DomainInterner`] (one arena, dense ids), so
//! verification compares borrowed arena slices without allocating; the
//! keys themselves are computed incrementally from FNV prefix states
//! without materializing any deletion variant.

use crate::distance;
use crate::domain::DomainName;
use crate::intern::{fnv1a, DomainInterner, FNV_OFFSET};
use crate::typogen::{self, TypoCandidate};
use std::collections::HashMap;

/// Reverse index over a fixed target list.
#[derive(Debug, Default, Clone)]
pub struct ReverseDl1Index {
    /// Interned targets; dense id order == input order (after dedup).
    targets: DomainInterner,
    /// Neighborhood-key hash → target indices (ascending per bucket).
    buckets: HashMap<u64, Vec<u32>>,
}

/// Calls `f` with the neighborhood key of `sld` itself and of each of its
/// single-deletion variants, computed incrementally (no allocation).
fn for_each_key(sld: &[u8], tld: &[u8], mut f: impl FnMut(u64)) {
    let mut base = fnv1a(FNV_OFFSET, tld);
    base = fnv1a(base, &[0xFF]);
    f(fnv1a(base, sld));
    // `prefix` is the FNV state after absorbing sld[..i]; the variant
    // deleting position i hashes as prefix ++ sld[i+1..].
    let mut prefix = base;
    for i in 0..sld.len() {
        f(fnv1a(prefix, &sld[i + 1..]));
        prefix = fnv1a(prefix, &sld[i..i + 1]);
    }
}

/// Below this many (distinct) targets the key-computation fan-out costs
/// more than it saves; the paper-scale builds that matter are far above.
const PARALLEL_KEY_THRESHOLD: usize = 4096;

/// The deduplicated neighborhood-key set of one target, sorted. Pure —
/// safe to compute shard-parallel.
fn target_key_set(t: &DomainName) -> Vec<u64> {
    let mut keys = Vec::with_capacity(t.sld().len() + 1);
    for_each_key(t.sld().as_bytes(), t.tld().as_bytes(), |key| keys.push(key));
    keys.sort_unstable();
    keys.dedup();
    keys
}

impl ReverseDl1Index {
    /// Builds the index over `targets`. Duplicate names are collapsed;
    /// indices returned by [`ReverseDl1Index::matches`] refer to the
    /// deduplicated first-occurrence order.
    ///
    /// Sharded at scale: interning/dedup is a cheap sequential pass, the
    /// per-target key sets are computed data-parallel (they are pure
    /// functions of the name), and the bucket merge is sequential in
    /// dense-id order — so each bucket's id list is ascending exactly as
    /// the sequential build produced, at any thread count.
    pub fn build(targets: &[DomainName]) -> ReverseDl1Index {
        let mut index = ReverseDl1Index {
            targets: DomainInterner::with_capacity(targets.len(), 12),
            buckets: HashMap::new(),
        };
        // Phase 1: intern + dedup in first-occurrence order, remembering
        // each kept target's position in the input slice.
        let mut kept: Vec<usize> = Vec::with_capacity(targets.len());
        for (i, t) in targets.iter().enumerate() {
            let before = index.targets.len();
            index.targets.intern(t);
            if index.targets.len() != before {
                kept.push(i);
            }
        }
        // Phase 2: per-target key sets. The historical sequential loop's
        // `bucket.last() != Some(&k)` guard could only ever fire on the
        // target currently being keyed (dense ids ascend strictly across
        // targets), i.e. it collapsed every repeated key *within one
        // target* — the semantic unit is the per-target key SET, which
        // sort+dedup computes shard-locally.
        let key_sets: Vec<Vec<u64>> = if kept.len() >= PARALLEL_KEY_THRESHOLD {
            ets_parallel::par_map(&kept, |_, &i| target_key_set(&targets[i]))
        } else {
            kept.iter().map(|&i| target_key_set(&targets[i])).collect()
        };
        // Phase 3: sequential merge in dense-id order.
        for (k, keys) in key_sets.iter().enumerate() {
            for &key in keys {
                index.buckets.entry(key).or_default().push(k as u32);
            }
        }
        index
    }

    /// Number of (distinct) indexed targets.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the index holds no targets.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Sizes of the deletion-neighborhood buckets, ascending — the DL-1
    /// fan-out distribution (how many targets share each neighborhood
    /// key). Sorted so the result is independent of hash-map iteration
    /// order.
    pub fn bucket_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.buckets.values().map(Vec::len).collect();
        sizes.sort_unstable();
        sizes
    }

    /// The indexed target at `index`, materialized.
    pub fn target(&self, index: usize) -> Option<DomainName> {
        self.targets.id_at(index).map(|id| self.targets.domain(id))
    }

    /// Unverified bucket union for `domain`'s neighborhood, ascending and
    /// deduplicated.
    fn candidate_indices(&self, domain: &DomainName) -> Vec<u32> {
        let mut ids: Vec<u32> = Vec::new();
        for_each_key(domain.sld().as_bytes(), domain.tld().as_bytes(), |key| {
            if let Some(bucket) = self.buckets.get(&key) {
                ids.extend_from_slice(bucket);
            }
        });
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Indices of all targets `domain` is at DL distance exactly one from
    /// (same TLD), ascending. Every candidate is verified exactly, so the
    /// result is independent of hash behavior.
    pub fn matches(&self, domain: &DomainName) -> Vec<usize> {
        self.candidate_indices(domain)
            .into_iter()
            .filter_map(|k| {
                let id = self.targets.id_at(k as usize)?;
                let verified = self.targets.tld(id) == domain.tld()
                    && distance::is_dl1(self.targets.sld(id), domain.sld());
                verified.then_some(k as usize)
            })
            .collect()
    }

    /// Whether `domain` is a DL-1 typo of any indexed target.
    pub fn is_typo(&self, domain: &DomainName) -> bool {
        let mut hit = false;
        for_each_key(domain.sld().as_bytes(), domain.tld().as_bytes(), |key| {
            if hit {
                return;
            }
            if let Some(bucket) = self.buckets.get(&key) {
                hit = bucket.iter().any(|&k| {
                    self.targets.id_at(k as usize).is_some_and(|id| {
                        self.targets.tld(id) == domain.tld()
                            && distance::is_dl1(self.targets.sld(id), domain.sld())
                    })
                });
            }
        });
        hit
    }

    /// Full candidate records explaining `domain`: one
    /// [`TypoCandidate`] per matching target, in ascending target order —
    /// exactly what searching each target's [`typogen::generate_dl1`]
    /// output for `domain` would return, without regenerating anything.
    pub fn explain(&self, domain: &DomainName) -> Vec<TypoCandidate> {
        self.candidate_indices(domain)
            .into_iter()
            .filter_map(|k| {
                let id = self.targets.id_at(k as usize)?;
                typogen::classify_dl1(&self.targets.domain(id), domain)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn targets() -> Vec<DomainName> {
        [
            "gmail.com",
            "outlook.com",
            "hotmail.com",
            "gmal.com",
            "x.org",
        ]
        .iter()
        .map(|s| d(s))
        .collect()
    }

    #[test]
    fn finds_all_generated_typos() {
        let ts = targets();
        let index = ReverseDl1Index::build(&ts);
        for (k, t) in ts.iter().enumerate() {
            for cand in typogen::generate_dl1(t) {
                let m = index.matches(&cand.domain);
                assert!(m.contains(&k), "{} should match target {}", cand.domain, t);
                assert!(index.is_typo(&cand.domain));
            }
        }
    }

    #[test]
    fn rejects_non_typos() {
        let index = ReverseDl1Index::build(&targets());
        for name in ["outlook.com", "yahoo.com", "gmial.net", "gm.com"] {
            // outlook.com is a target itself (distance 0 — not a typo),
            // gmial.net has the wrong TLD, the others are at distance ≥ 2
            // from everything indexed.
            assert!(index.matches(&d(name)).is_empty(), "{name}");
            assert!(!index.is_typo(&d(name)), "{name}");
        }
        // gmail.com is a target, but it is also a DL-1 deletion typo of
        // the *other* target gmal.com — the index reports pure distance.
        assert_eq!(index.matches(&d("gmail.com")), vec![3]);
    }

    #[test]
    fn matches_brute_force_scan() {
        let ts = targets();
        let index = ReverseDl1Index::build(&ts);
        let queries = [
            "gmil.com",
            "gmal.com",
            "outlo0k.com",
            "hotmial.com",
            "y.org",
            "gmaal.com",
        ];
        for q in queries {
            let q = d(q);
            let brute: Vec<usize> = ts
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    t.tld() == q.tld() && distance::damerau_levenshtein(t.sld(), q.sld()) == 1
                })
                .map(|(k, _)| k)
                .collect();
            assert_eq!(index.matches(&q), brute, "{q}");
        }
    }

    #[test]
    fn explain_matches_generator_search() {
        let ts = targets();
        let index = ReverseDl1Index::build(&ts);
        let q = d("gmil.com"); // deletion typo of gmail.com AND substitution of gmal.com
        let explained = index.explain(&q);
        let expected: Vec<TypoCandidate> = ts
            .iter()
            .filter_map(|t| typogen::generate_dl1(t).into_iter().find(|c| c.domain == q))
            .collect();
        assert_eq!(explained, expected);
        assert_eq!(explained.len(), 2);
    }

    #[test]
    fn duplicate_targets_collapse() {
        let ts = vec![d("gmail.com"), d("gmail.com"), d("aol.com")];
        let index = ReverseDl1Index::build(&ts);
        assert_eq!(index.len(), 2);
        assert_eq!(index.matches(&d("gmial.com")), vec![0]);
        assert_eq!(index.target(1), Some(d("aol.com")));
    }

    /// The historical sequential build, kept verbatim as the oracle for
    /// the sharded one.
    fn build_sequential_reference(targets: &[DomainName]) -> ReverseDl1Index {
        let mut index = ReverseDl1Index {
            targets: DomainInterner::with_capacity(targets.len(), 12),
            buckets: HashMap::new(),
        };
        for t in targets {
            let before = index.targets.len();
            let id = index.targets.intern(t);
            if index.targets.len() == before {
                continue; // duplicate target
            }
            let k = id.index() as u32;
            for_each_key(t.sld().as_bytes(), t.tld().as_bytes(), |key| {
                let bucket = index.buckets.entry(key).or_default();
                if bucket.last() != Some(&k) {
                    bucket.push(k);
                }
            });
        }
        index
    }

    #[test]
    fn sharded_build_matches_sequential_reference() {
        // Enough targets to cross PARALLEL_KEY_THRESHOLD, with repeated
        // characters (key runs), duplicates, and mixed TLDs.
        let mut ts: Vec<DomainName> = (0..PARALLEL_KEY_THRESHOLD + 500)
            .map(|i| {
                let tld = if i % 3 == 0 { "com" } else { "org" };
                d(&format!("aabb{i}oo.{tld}"))
            })
            .collect();
        ts.push(d("aabb7oo.org")); // duplicate of an earlier entry
        let reference = build_sequential_reference(&ts);
        for threads in [1, 2, 8] {
            ets_parallel::set_threads(threads);
            let sharded = ReverseDl1Index::build(&ts);
            ets_parallel::set_threads(0);
            assert_eq!(sharded.targets.len(), reference.targets.len());
            assert_eq!(
                sharded.buckets, reference.buckets,
                "buckets differ at {threads} threads"
            );
        }
    }

    #[test]
    fn single_char_targets_work() {
        let index = ReverseDl1Index::build(&[d("x.org")]);
        assert_eq!(index.matches(&d("y.org")), vec![0]); // substitution
        assert_eq!(index.matches(&d("xy.org")), vec![0]); // addition
        assert!(index.matches(&d("y.com")).is_empty()); // wrong tld
    }
}
