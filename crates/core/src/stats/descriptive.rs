//! Descriptive statistics and robust outlier detection.

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (n − 1 denominator). Returns `0.0` for fewer than two
/// observations.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median. Returns `0.0` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation (Rousseeuw & Hubert), *not* scaled by 1.4826.
///
/// The paper uses "the median of all absolute deviations from the median
/// (MAD)" to detect ctypos with outlier traffic (§6.1).
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// Indices of values whose distance from the median exceeds
/// `threshold × MAD × 1.4826` (the 1.4826 factor makes MAD consistent with
/// the standard deviation under normality, so `threshold` is in σ-units;
/// 3.0 — "3-sigma" — is the conventional choice).
///
/// When MAD is zero (half the data identical) the comparison falls back to
/// flagging any value different from the median, times the threshold rule
/// applied to the mean absolute deviation, to avoid flagging everything.
pub fn mad_outliers(xs: &[f64], threshold: f64) -> Vec<usize> {
    if xs.len() < 3 {
        return Vec::new();
    }
    let med = median(xs);
    let mut scale = mad(xs) * 1.4826;
    if scale == 0.0 {
        // Degenerate: fall back to mean absolute deviation.
        let mean_abs = xs.iter().map(|x| (x - med).abs()).sum::<f64>() / xs.len() as f64;
        if mean_abs == 0.0 {
            return Vec::new();
        }
        scale = mean_abs * 1.2533; // consistency constant for mean abs dev
    }
    xs.iter()
        .enumerate()
        .filter(|(_, &x)| ((x - med) / scale).abs() > threshold)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // sample variance of this classic set is 32/7
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((stddev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mad(&[]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn mad_of_known_set() {
        // median 2, |dev| = [1,1,0,2,6] -> sorted [0,1,1,2,6] -> MAD 1
        let xs = [1.0, 1.0, 2.0, 4.0, 8.0];
        assert_eq!(mad(&xs), 1.0);
    }

    #[test]
    fn outlier_detection_flags_the_spike() {
        let mut xs = vec![10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 9.8];
        xs.push(1000.0);
        let out = mad_outliers(&xs, 3.0);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn no_outliers_in_tight_data() {
        let xs = [10.0, 11.0, 9.0, 10.5, 9.5];
        assert!(mad_outliers(&xs, 3.0).is_empty());
    }

    #[test]
    fn degenerate_mad_does_not_flag_everything() {
        // More than half identical: MAD = 0, but moderate values nearby
        // should survive; only the huge spike is flagged.
        let xs = [5.0, 5.0, 5.0, 5.0, 5.1, 500.0];
        let out = mad_outliers(&xs, 3.0);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn all_identical_yields_none() {
        let xs = [5.0; 10];
        assert!(mad_outliers(&xs, 3.0).is_empty());
    }

    #[test]
    fn short_input_yields_none() {
        assert!(mad_outliers(&[1.0, 100.0], 3.0).is_empty());
    }
}
