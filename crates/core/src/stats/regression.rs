//! Ordinary least squares with R² and leave-one-out cross-validation.
//!
//! Section 6.2 fits a linear model in square-root space with three features
//! and reports R² = 0.74 on the fit and 0.63 under leave-one-out
//! cross-validation. This module provides a small, dependency-free OLS:
//! normal equations solved by Gaussian elimination with partial pivoting,
//! which is ample for the handful of predictors the study uses.

use serde::{Deserialize, Serialize};

/// An ordinary-least-squares design: rows of predictor values plus the
/// response. An intercept column is added automatically.
#[derive(Debug, Clone, Default)]
pub struct Ols {
    rows: Vec<Vec<f64>>,
    ys: Vec<f64>,
    k: Option<usize>,
}

/// A fitted OLS model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OlsFit {
    /// Coefficients: `[intercept, b1, b2, ...]`.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
    /// Residual standard error (√(RSS / (n − p))).
    pub residual_se: f64,
    /// Number of observations.
    pub n: usize,
}

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer observations than coefficients.
    TooFewObservations,
    /// The normal-equation matrix was singular (collinear predictors).
    Singular,
    /// A row had the wrong number of predictors.
    RaggedRow,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewObservations => write!(f, "fewer observations than coefficients"),
            FitError::Singular => write!(f, "singular design (collinear predictors)"),
            FitError::RaggedRow => write!(f, "observation with wrong predictor count"),
        }
    }
}

impl std::error::Error for FitError {}

impl Ols {
    /// Creates an empty design.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation: predictor values (without intercept) and the
    /// response.
    pub fn push(&mut self, predictors: &[f64], y: f64) -> Result<(), FitError> {
        match self.k {
            None => self.k = Some(predictors.len()),
            Some(k) if k != predictors.len() => return Err(FitError::RaggedRow),
            _ => {}
        }
        self.rows.push(predictors.to_vec());
        self.ys.push(y);
        Ok(())
    }

    /// Number of observations so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Fits by solving the normal equations `XᵀX β = Xᵀy`.
    pub fn fit(&self) -> Result<OlsFit, FitError> {
        let k = self.k.unwrap_or(0);
        let p = k + 1; // + intercept
        let n = self.rows.len();
        if n < p {
            return Err(FitError::TooFewObservations);
        }
        // Build XtX (p×p) and Xty (p).
        let mut xtx = vec![vec![0.0f64; p]; p];
        let mut xty = vec![0.0f64; p];
        for (row, &y) in self.rows.iter().zip(&self.ys) {
            let x = design_row(row);
            for i in 0..p {
                xty[i] += x[i] * y;
                for j in 0..p {
                    xtx[i][j] += x[i] * x[j];
                }
            }
        }
        let beta = solve(xtx, xty).ok_or(FitError::Singular)?;
        // R² and residual SE.
        let mean_y: f64 = self.ys.iter().sum::<f64>() / n as f64;
        let mut rss = 0.0;
        let mut tss = 0.0;
        for (row, &y) in self.rows.iter().zip(&self.ys) {
            let pred = predict_with(&beta, row);
            rss += (y - pred) * (y - pred);
            tss += (y - mean_y) * (y - mean_y);
        }
        let r_squared = if tss == 0.0 { 1.0 } else { 1.0 - rss / tss };
        let dof = n.saturating_sub(p).max(1);
        Ok(OlsFit {
            coefficients: beta,
            r_squared,
            residual_se: (rss / dof as f64).sqrt(),
            n,
        })
    }

    /// Leave-one-out cross-validated R² (the "R² drops to 0.63" check of
    /// §6.2): each observation is predicted by a model fitted on the other
    /// n−1, and R² is computed from those out-of-sample predictions.
    pub fn loocv_r_squared(&self) -> Result<f64, FitError> {
        let n = self.rows.len();
        let p = self.k.unwrap_or(0) + 1;
        if n < p + 1 {
            return Err(FitError::TooFewObservations);
        }
        let mean_y: f64 = self.ys.iter().sum::<f64>() / n as f64;
        let mut press = 0.0;
        let mut tss = 0.0;
        for leave in 0..n {
            let mut sub = Ols::new();
            for i in 0..n {
                if i != leave {
                    sub.push(&self.rows[i], self.ys[i])?;
                }
            }
            let fit = sub.fit()?;
            let pred = fit.predict(&self.rows[leave]);
            press += (self.ys[leave] - pred) * (self.ys[leave] - pred);
            tss += (self.ys[leave] - mean_y) * (self.ys[leave] - mean_y);
        }
        if tss == 0.0 {
            return Ok(1.0);
        }
        Ok(1.0 - press / tss)
    }
}

impl OlsFit {
    /// Predicts the response for one predictor row (without intercept).
    pub fn predict(&self, predictors: &[f64]) -> f64 {
        predict_with(&self.coefficients, predictors)
    }
}

fn design_row(predictors: &[f64]) -> Vec<f64> {
    let mut x = Vec::with_capacity(predictors.len() + 1);
    x.push(1.0);
    x.extend_from_slice(predictors);
    x
}

fn predict_with(beta: &[f64], predictors: &[f64]) -> f64 {
    let mut acc = beta[0];
    for (b, x) in beta[1..].iter().zip(predictors) {
        acc += b * x;
    }
    acc
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` when `A` is (numerically) singular.
#[allow(clippy::needless_range_loop)] // textbook elimination reads clearer indexed
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // pivot
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        if a[piv][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        // eliminate
        for r in col + 1..n {
            let f = a[r][col] / a[col][col];
            for c in col..n {
                a[r][c] -= f * a[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col][c] * x[c];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        // y = 3 + 2x, no noise.
        let mut ols = Ols::new();
        for i in 0..10 {
            let x = i as f64;
            ols.push(&[x], 3.0 + 2.0 * x).unwrap();
        }
        let fit = ols.fit().unwrap();
        assert!((fit.coefficients[0] - 3.0).abs() < 1e-9);
        assert!((fit.coefficients[1] - 2.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!(fit.residual_se < 1e-6);
    }

    #[test]
    fn multivariate_plane() {
        // y = 1 + 2a - 3b
        let mut ols = Ols::new();
        for a in 0..5 {
            for b in 0..5 {
                let (af, bf) = (a as f64, b as f64);
                ols.push(&[af, bf], 1.0 + 2.0 * af - 3.0 * bf).unwrap();
            }
        }
        let fit = ols.fit().unwrap();
        assert!((fit.coefficients[0] - 1.0).abs() < 1e-9);
        assert!((fit.coefficients[1] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients[2] + 3.0).abs() < 1e-9);
        assert!((fit.predict(&[2.0, 1.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_has_sub_unit_r2() {
        // Deterministic pseudo-noise.
        let mut ols = Ols::new();
        for i in 0..50 {
            let x = i as f64;
            let noise = ((i * 2654435761u64) % 1000) as f64 / 1000.0 - 0.5;
            ols.push(&[x], 5.0 + 0.7 * x + 10.0 * noise).unwrap();
        }
        let fit = ols.fit().unwrap();
        assert!(fit.r_squared > 0.5 && fit.r_squared < 1.0);
        let cv = ols.loocv_r_squared().unwrap();
        assert!(
            cv < fit.r_squared,
            "LOOCV {cv} should be below train {r}",
            r = fit.r_squared
        );
    }

    #[test]
    fn too_few_observations() {
        let mut ols = Ols::new();
        ols.push(&[1.0, 2.0], 3.0).unwrap();
        assert_eq!(ols.fit().unwrap_err(), FitError::TooFewObservations);
    }

    #[test]
    fn ragged_rows_rejected() {
        let mut ols = Ols::new();
        ols.push(&[1.0], 1.0).unwrap();
        assert_eq!(ols.push(&[1.0, 2.0], 1.0).unwrap_err(), FitError::RaggedRow);
    }

    #[test]
    fn collinear_predictors_are_singular() {
        let mut ols = Ols::new();
        for i in 0..10 {
            let x = i as f64;
            ols.push(&[x, 2.0 * x], x).unwrap();
        }
        assert_eq!(ols.fit().unwrap_err(), FitError::Singular);
    }

    #[test]
    fn intercept_only_model() {
        let mut ols = Ols::new();
        for y in [2.0, 4.0, 6.0] {
            ols.push(&[], y).unwrap();
        }
        let fit = ols.fit().unwrap();
        assert!((fit.coefficients[0] - 4.0).abs() < 1e-12);
        assert!((fit.predict(&[]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn constant_response_r2_is_one() {
        let mut ols = Ols::new();
        for i in 0..5 {
            ols.push(&[i as f64], 7.0).unwrap();
        }
        let fit = ols.fit().unwrap();
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loocv_on_exact_data_is_one() {
        let mut ols = Ols::new();
        for i in 0..10 {
            let x = i as f64;
            ols.push(&[x], 1.0 + x).unwrap();
        }
        let cv = ols.loocv_r_squared().unwrap();
        assert!((cv - 1.0).abs() < 1e-9);
    }
}
