//! Student-t confidence intervals.
//!
//! Figure 9 marks 95% confidence intervals for the mean relative popularity
//! of each mistake type, and §6.2 reports 95% intervals around the
//! projected email volumes. Sample sizes there are small (a handful of
//! domains per mistake type), so the normal approximation is inadequate and
//! a t quantile is required.

/// Two-sided critical value of the Student-t distribution.
///
/// `confidence` is the two-sided level (e.g. `0.95`); `df` the degrees of
/// freedom. Computed by bisecting the regularized incomplete beta function
/// (the t CDF), accurate to ~1e-8 — more than enough for interval
/// construction, and exact enough to match printed t-tables.
///
/// ```
/// use ets_core::stats::t_critical;
/// assert!((t_critical(0.95, 10) - 2.228).abs() < 1e-3);
/// assert!((t_critical(0.95, 1) - 12.706).abs() < 1e-2);
/// ```
pub fn t_critical(confidence: f64, df: usize) -> f64 {
    assert!(
        (0.0..1.0).contains(&confidence),
        "confidence must be in (0,1)"
    );
    assert!(df >= 1, "need at least one degree of freedom");
    let target = 1.0 - (1.0 - confidence) / 2.0; // upper-tail CDF value
    let (mut lo, mut hi) = (0.0f64, 1e3f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// CDF of the Student-t distribution with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: usize) -> f64 {
    let v = df as f64;
    let x = v / (v + t * t);
    let ib = 0.5 * incomplete_beta(0.5 * v, 0.5, x);
    if t >= 0.0 {
        1.0 - ib
    } else {
        ib
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction of Numerical Recipes (Lentz's algorithm).
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - incomplete_beta(b, a, 1.0 - x)
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // even step
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection formula
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// A two-sided confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Interval half-width.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }
}

/// Student-t confidence interval for the mean of `xs`.
///
/// Returns `None` for fewer than two observations (no variance estimate).
pub fn mean_confidence_interval(xs: &[f64], confidence: f64) -> Option<ConfidenceInterval> {
    if xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let m = super::descriptive::mean(xs);
    let s = super::descriptive::stddev(xs);
    let t = t_critical(confidence, xs.len() - 1);
    let hw = t * s / n.sqrt();
    Some(ConfidenceInterval {
        mean: m,
        lo: m - hw,
        hi: m + hw,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_symmetry_and_midpoint() {
        for df in [1, 5, 30] {
            assert!((t_cdf(0.0, df) - 0.5).abs() < 1e-10);
            assert!((t_cdf(1.5, df) + t_cdf(-1.5, df) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn t_critical_matches_tables() {
        // Classic two-sided 95% table values.
        let cases = [
            (1, 12.706),
            (2, 4.303),
            (5, 2.571),
            (10, 2.228),
            (30, 2.042),
            (100, 1.984),
        ];
        for (df, expect) in cases {
            let got = t_critical(0.95, df);
            assert!(
                (got - expect).abs() < 5e-3,
                "df={df}: got {got}, want {expect}"
            );
        }
        // 99% level
        assert!((t_critical(0.99, 10) - 3.169).abs() < 5e-3);
    }

    #[test]
    fn t_approaches_normal_for_large_df() {
        assert!((t_critical(0.95, 100_000) - 1.96).abs() < 1e-2);
    }

    #[test]
    fn interval_contains_mean_and_shrinks_with_n() {
        let xs4: Vec<f64> = (0..4).map(|i| 10.0 + i as f64).collect();
        let xs40: Vec<f64> = (0..40).map(|i| 10.0 + (i % 4) as f64).collect();
        let ci4 = mean_confidence_interval(&xs4, 0.95).unwrap();
        let ci40 = mean_confidence_interval(&xs40, 0.95).unwrap();
        assert!(ci4.contains(ci4.mean));
        assert!(ci40.half_width() < ci4.half_width());
    }

    #[test]
    fn interval_requires_two_points() {
        assert!(mean_confidence_interval(&[1.0], 0.95).is_none());
        assert!(mean_confidence_interval(&[], 0.95).is_none());
    }

    #[test]
    fn higher_confidence_is_wider() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let c90 = mean_confidence_interval(&xs, 0.90).unwrap();
        let c99 = mean_confidence_interval(&xs, 0.99).unwrap();
        assert!(c99.half_width() > c90.half_width());
    }
}
