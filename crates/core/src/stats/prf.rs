//! Precision / recall (sensitivity) / F1 scoring.
//!
//! The paper stresses (§4.2.2) that for its *imbalanced* datasets accuracy
//! is meaningless — an always-negative classifier scores high accuracy —
//! and reports precision and sensitivity instead (Tables 2 and 3).

use serde::{Deserialize, Serialize};

/// A binary confusion matrix, accumulated one prediction at a time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Predicted positive, actually positive.
    pub tp: u64,
    /// Predicted positive, actually negative.
    pub fp: u64,
    /// Predicted negative, actually positive.
    pub fn_: u64,
    /// Predicted negative, actually negative.
    pub tn: u64,
}

impl Confusion {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(predicted, actual)` observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Precision: TP / (TP + FP). `None` when nothing was predicted
    /// positive (the paper prints "–" for Untroubled, an all-spam corpus
    /// where precision over ham is undefined).
    pub fn precision(&self) -> Option<f64> {
        let denom = self.tp + self.fp;
        if denom == 0 {
            None
        } else {
            Some(self.tp as f64 / denom as f64)
        }
    }

    /// Recall / sensitivity: TP / (TP + FN). `None` when there are no actual
    /// positives.
    pub fn recall(&self) -> Option<f64> {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            None
        } else {
            Some(self.tp as f64 / denom as f64)
        }
    }

    /// F1: harmonic mean of precision and recall.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Accuracy — provided to *demonstrate* its inadequacy on imbalanced
    /// data, as the paper argues.
    pub fn accuracy(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            None
        } else {
            Some((self.tp + self.tn) as f64 / total as f64)
        }
    }

    /// Collapses into the three scores reported by Tables 2 and 3.
    pub fn scores(&self) -> PrfScores {
        PrfScores {
            precision: self.precision(),
            recall: self.recall(),
            f1: self.f1(),
        }
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }
}

/// The precision / recall / F1 triple of Tables 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrfScores {
    /// TP / (TP + FP), `None` if undefined.
    pub precision: Option<f64>,
    /// TP / (TP + FN), `None` if undefined.
    pub recall: Option<f64>,
    /// Harmonic mean, `None` if either component is undefined.
    pub f1: Option<f64>,
}

impl PrfScores {
    /// Formats a score as the paper does: two decimals, or "–" when
    /// undefined.
    pub fn fmt_score(s: Option<f64>) -> String {
        match s {
            Some(v) => format!("{v:.2}"),
            None => "–".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(tp: u64, fp: u64, fn_: u64, tn: u64) -> Confusion {
        Confusion { tp, fp, fn_, tn }
    }

    #[test]
    fn record_routes_correctly() {
        let mut c = Confusion::new();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!(c, matrix(1, 1, 1, 1));
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn perfect_classifier() {
        let c = matrix(10, 0, 0, 90);
        assert_eq!(c.precision(), Some(1.0));
        assert_eq!(c.recall(), Some(1.0));
        assert_eq!(c.f1(), Some(1.0));
    }

    #[test]
    fn known_values() {
        // precision 0.75, recall 0.6, F1 = 2*.75*.6/1.35 = 2/3
        let c = matrix(3, 1, 2, 4);
        assert!((c.precision().unwrap() - 0.75).abs() < 1e-12);
        assert!((c.recall().unwrap() - 0.6).abs() < 1e-12);
        assert!((c.f1().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn undefined_scores() {
        // never predicts positive
        let c = matrix(0, 0, 5, 95);
        assert_eq!(c.precision(), None);
        assert_eq!(c.recall(), Some(0.0));
        assert_eq!(c.f1(), None);
        // no actual positives
        let c = matrix(0, 3, 0, 97);
        assert_eq!(c.recall(), None);
    }

    #[test]
    fn accuracy_misleads_on_imbalance() {
        // The paper's point: an all-negative classifier on 1% positives has
        // 99% accuracy and no recall.
        let c = matrix(0, 0, 10, 990);
        assert!(c.accuracy().unwrap() > 0.98);
        assert_eq!(c.recall(), Some(0.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = matrix(1, 2, 3, 4);
        a.merge(&matrix(10, 20, 30, 40));
        assert_eq!(a, matrix(11, 22, 33, 44));
    }

    #[test]
    fn formatting_matches_paper() {
        assert_eq!(PrfScores::fmt_score(Some(0.964)), "0.96");
        assert_eq!(PrfScores::fmt_score(None), "–");
    }
}
