//! Statistics used throughout the study.
//!
//! * [`descriptive`] — means, variance, medians, and the MAD outlier
//!   detector used in §6.1 to drop accidentally-popular ctypos.
//! * [`ci`] — Student-t confidence intervals for means (Figure 9's error
//!   bars and the §6.2 projection intervals).
//! * [`regression`] — ordinary least squares with R² and leave-one-out
//!   cross-validation (the §6.2 model quality metrics).
//! * [`prf`] — precision / recall (sensitivity) / F1 scoring for the
//!   scrubber (Table 2) and spam-classifier (Table 3) evaluations.

pub mod ci;
pub mod descriptive;
pub mod prf;
pub mod regression;

pub use ci::{mean_confidence_interval, t_critical};
pub use descriptive::{mad, mad_outliers, mean, median, stddev, variance};
pub use prf::{Confusion, PrfScores};
pub use regression::{Ols, OlsFit};
