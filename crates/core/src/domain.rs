//! Validated domain names.
//!
//! The study operates almost exclusively on registrable second-level domains
//! (`gmail.com`, `outlo0k.com`, ...). [`DomainName`] stores a lower-cased,
//! syntactically valid name and offers cheap access to its labels, the
//! second-level label that typo generation mutates, and the public suffix
//! (modeled as the final label, which is accurate for the `.com`-centric
//! corpus the paper uses).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum length of a full domain name in presentation format.
///
/// RFC 1035 limits names to 255 octets in wire format; 253 characters is the
/// corresponding presentation-format limit.
pub const MAX_NAME_LEN: usize = 253;

/// Maximum length of a single label (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;

/// Errors produced when parsing a [`DomainName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainParseError {
    /// The name was empty.
    Empty,
    /// The name exceeded [`MAX_NAME_LEN`] characters.
    TooLong(usize),
    /// A label was empty (leading/trailing/double dot).
    EmptyLabel,
    /// A label exceeded [`MAX_LABEL_LEN`] characters.
    LabelTooLong(String),
    /// A label contained a character outside `[a-z0-9-]`.
    BadCharacter(char),
    /// A label started or ended with a hyphen.
    BadHyphen(String),
    /// The name had fewer than two labels (no TLD).
    MissingTld,
}

impl fmt::Display for DomainParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainParseError::Empty => write!(f, "empty domain name"),
            DomainParseError::TooLong(n) => {
                write!(f, "domain name of {n} chars exceeds {MAX_NAME_LEN}")
            }
            DomainParseError::EmptyLabel => write!(f, "empty label in domain name"),
            DomainParseError::LabelTooLong(l) => {
                write!(f, "label `{l}` exceeds {MAX_LABEL_LEN} chars")
            }
            DomainParseError::BadCharacter(c) => {
                write!(f, "character `{c}` not allowed in domain names")
            }
            DomainParseError::BadHyphen(l) => {
                write!(f, "label `{l}` must not start or end with a hyphen")
            }
            DomainParseError::MissingTld => write!(f, "domain name needs at least two labels"),
        }
    }
}

impl std::error::Error for DomainParseError {}

/// A validated, lower-cased domain name with at least two labels.
///
/// ```
/// use ets_core::DomainName;
///
/// let d: DomainName = "GMail.com".parse().unwrap();
/// assert_eq!(d.as_str(), "gmail.com");
/// assert_eq!(d.sld(), "gmail");
/// assert_eq!(d.tld(), "com");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct DomainName {
    name: String,
    /// Byte offset of the dot separating the second-level label from the
    /// public suffix, i.e. `name[..sld_end]` is everything up to the TLD.
    sld_end: usize,
}

impl DomainName {
    /// Parses and validates a domain name, lower-casing it.
    pub fn parse(input: &str) -> Result<Self, DomainParseError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Err(DomainParseError::Empty);
        }
        if trimmed.len() > MAX_NAME_LEN {
            return Err(DomainParseError::TooLong(trimmed.len()));
        }
        let name = trimmed.to_ascii_lowercase();
        let mut label_count = 0usize;
        for label in name.split('.') {
            if label.is_empty() {
                return Err(DomainParseError::EmptyLabel);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(DomainParseError::LabelTooLong(label.to_owned()));
            }
            for c in label.chars() {
                if !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-') {
                    return Err(DomainParseError::BadCharacter(c));
                }
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(DomainParseError::BadHyphen(label.to_owned()));
            }
            label_count += 1;
        }
        if label_count < 2 {
            return Err(DomainParseError::MissingTld);
        }
        let sld_end = name.rfind('.').expect("at least two labels");
        Ok(DomainName { name, sld_end })
    }

    /// Builds a `DomainName` from parts already known to be valid — the
    /// id-backed fast path used by [`crate::intern::DomainInterner`] and
    /// the typo engine to materialize names without re-running the full
    /// [`DomainName::parse`] validation. `name` must be a lowercase,
    /// already-validated domain string and `sld_end` the byte offset of
    /// the dot before the final label.
    pub(crate) fn from_validated_parts(name: String, sld_end: usize) -> DomainName {
        debug_assert_eq!(
            DomainName::parse(&name).as_ref().map(|d| d.sld_end),
            Ok(sld_end),
            "from_validated_parts called with unvalidated input {name:?}"
        );
        DomainName { name, sld_end }
    }

    /// Joins an already-lowercase second-level label and TLD into a
    /// registrable two-label name. Validates the same rules as
    /// [`DomainName::parse`] — but rejects uppercase instead of folding
    /// it, and skips the intermediate `format!` + re-scan round trip.
    /// This is the snapshot-load fast path: persisted labels are
    /// lowercase by construction, so a case mismatch is corruption.
    pub fn from_sld_tld(sld: &str, tld: &str) -> Result<DomainName, DomainParseError> {
        for label in [sld, tld] {
            if label.is_empty() {
                return Err(DomainParseError::EmptyLabel);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(DomainParseError::LabelTooLong(label.to_owned()));
            }
            for c in label.chars() {
                if !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-') {
                    return Err(DomainParseError::BadCharacter(c));
                }
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(DomainParseError::BadHyphen(label.to_owned()));
            }
        }
        let total = sld.len() + 1 + tld.len();
        if total > MAX_NAME_LEN {
            return Err(DomainParseError::TooLong(total));
        }
        let mut name = String::with_capacity(total);
        name.push_str(sld);
        name.push('.');
        name.push_str(tld);
        Ok(DomainName {
            name,
            sld_end: sld.len(),
        })
    }

    /// The full name in presentation format, without a trailing dot.
    pub fn as_str(&self) -> &str {
        &self.name
    }

    /// The label immediately left of the public suffix (the part that typo
    /// generation mutates). For `mail.google.com` this is `google`.
    pub fn sld(&self) -> &str {
        let head = &self.name[..self.sld_end];
        match head.rfind('.') {
            Some(i) => &head[i + 1..],
            None => head,
        }
    }

    /// The public suffix, modeled as the final label (`com`, `net`, ...).
    pub fn tld(&self) -> &str {
        &self.name[self.sld_end + 1..]
    }

    /// The registrable domain: second-level label plus public suffix.
    ///
    /// For `smtp.gmail.com` this returns `gmail.com`; for `gmail.com` it is
    /// the name itself.
    pub fn registrable(&self) -> DomainName {
        let reg = format!("{}.{}", self.sld(), self.tld());
        DomainName::parse(&reg).expect("registrable part of a valid name is valid")
    }

    /// Labels from left to right.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.name.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.name.split('.').count()
    }

    /// Whether this is exactly a registrable domain (two labels).
    pub fn is_registrable(&self) -> bool {
        self.label_count() == 2
    }

    /// True if `self` is a subdomain of `parent` (not equal to it).
    ///
    /// ```
    /// use ets_core::DomainName;
    /// let a: DomainName = "smtp.gmail.com".parse().unwrap();
    /// let b: DomainName = "gmail.com".parse().unwrap();
    /// assert!(a.is_subdomain_of(&b));
    /// assert!(!b.is_subdomain_of(&a));
    /// ```
    pub fn is_subdomain_of(&self, parent: &DomainName) -> bool {
        self.name.len() > parent.name.len()
            && self.name.ends_with(parent.name.as_str())
            && self.name.as_bytes()[self.name.len() - parent.name.len() - 1] == b'.'
    }

    /// Builds a new registrable domain with the same TLD but a different
    /// second-level label (the primitive used by typo generation).
    pub fn with_sld(&self, sld: &str) -> Result<DomainName, DomainParseError> {
        DomainName::parse(&format!("{}.{}", sld, self.tld()))
    }

    /// The "missing dot" flattening of a subdomain, used by doppelganger
    /// typosquatting: `ca.ibm.com` → `caibm.com`. Returns `None` when the
    /// name is already registrable.
    pub fn doppelganger(&self) -> Option<DomainName> {
        if self.is_registrable() {
            return None;
        }
        let labels: Vec<&str> = self.labels().collect();
        let flattened = format!("{}{}.{}", labels[0], labels[1], labels[2..].join("."));
        DomainName::parse(&flattened).ok()
    }
}

impl FromStr for DomainName {
    type Err = DomainParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl TryFrom<String> for DomainName {
    type Error = DomainParseError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        DomainName::parse(&s)
    }
}

impl From<DomainName> for String {
    fn from(d: DomainName) -> String {
        d.name
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn parses_and_lowercases() {
        assert_eq!(d("GMail.COM").as_str(), "gmail.com");
    }

    #[test]
    fn strips_trailing_dot() {
        assert_eq!(d("gmail.com.").as_str(), "gmail.com");
    }

    #[test]
    fn sld_and_tld() {
        let dom = d("mail.google.com");
        assert_eq!(dom.sld(), "google");
        assert_eq!(dom.tld(), "com");
        assert_eq!(dom.registrable().as_str(), "google.com");
    }

    #[test]
    fn registrable_of_registrable_is_identity() {
        let dom = d("yopmail.com");
        assert_eq!(dom.registrable(), dom);
    }

    #[test]
    fn rejects_single_label() {
        assert_eq!(
            DomainName::parse("localhost"),
            Err(DomainParseError::MissingTld)
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(DomainName::parse(""), Err(DomainParseError::Empty));
        assert_eq!(DomainName::parse("."), Err(DomainParseError::Empty));
    }

    #[test]
    fn rejects_empty_label() {
        assert_eq!(
            DomainName::parse("a..com"),
            Err(DomainParseError::EmptyLabel)
        );
        assert_eq!(DomainName::parse(".com"), Err(DomainParseError::EmptyLabel));
    }

    #[test]
    fn rejects_bad_chars() {
        assert_eq!(
            DomainName::parse("gm_ail.com"),
            Err(DomainParseError::BadCharacter('_'))
        );
        assert_eq!(
            DomainName::parse("gmaïl.com"),
            Err(DomainParseError::BadCharacter('ï'))
        );
    }

    #[test]
    fn rejects_hyphen_edges() {
        assert!(matches!(
            DomainName::parse("-gmail.com"),
            Err(DomainParseError::BadHyphen(_))
        ));
        assert!(matches!(
            DomainName::parse("gmail-.com"),
            Err(DomainParseError::BadHyphen(_))
        ));
        // interior hyphen is fine (the paper registered gmai-l.com)
        assert_eq!(d("gmai-l.com").sld(), "gmai-l");
    }

    #[test]
    fn rejects_long_label() {
        let long = "a".repeat(64);
        assert!(matches!(
            DomainName::parse(&format!("{long}.com")),
            Err(DomainParseError::LabelTooLong(_))
        ));
        let ok = "a".repeat(63);
        assert!(DomainName::parse(&format!("{ok}.com")).is_ok());
    }

    #[test]
    fn rejects_long_name() {
        let label = "a".repeat(60);
        let name = format!("{label}.{label}.{label}.{label}.{label}.com");
        assert!(matches!(
            DomainName::parse(&name),
            Err(DomainParseError::TooLong(_))
        ));
    }

    #[test]
    fn subdomain_relation() {
        assert!(d("smtp.gmail.com").is_subdomain_of(&d("gmail.com")));
        assert!(!d("gmail.com").is_subdomain_of(&d("gmail.com")));
        // suffix match without a dot boundary is not a subdomain
        assert!(!d("mygmail.com").is_subdomain_of(&d("gmail.com")));
    }

    #[test]
    fn with_sld_replaces_second_level() {
        assert_eq!(
            d("gmail.com").with_sld("gmial").unwrap().as_str(),
            "gmial.com"
        );
    }

    #[test]
    fn doppelganger_flattens_one_dot() {
        assert_eq!(
            d("ca.ibm.com").doppelganger().unwrap().as_str(),
            "caibm.com"
        );
        assert_eq!(
            d("smtp.gmail.com").doppelganger().unwrap().as_str(),
            "smtpgmail.com"
        );
        assert!(d("ibm.com").doppelganger().is_none());
    }

    #[test]
    fn serde_round_trip() {
        let dom = d("outlo0k.com");
        let json = serde_json::to_string(&dom).unwrap();
        assert_eq!(json, "\"outlo0k.com\"");
        let back: DomainName = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dom);
    }
}
