//! Defenses against email typosquatting (§8).
//!
//! The paper's discussion section sketches two practical defenses this
//! module implements:
//!
//! * **Typo correction** ([`TypoCorrector`]) — "typo correction could be
//!   integrated into any input field: at SMTP setup phase, registrations,
//!   email recipient, or when giving contact information": given a typed
//!   domain, rank the plausible intended targets by
//!   `P(intended) ∝ E_target · Pt(typed | target)`.
//! * **Defensive registration planning** ([`plan_registrations`]) —
//!   "large providers registering their typosquatting domains defensively
//!   would have the biggest impact per defensive registration": a greedy
//!   budgeted plan maximizing expected intercepted emails per dollar.

use crate::alexa::PopularityList;
use crate::keyboard;
use crate::revindex::ReverseDl1Index;
use crate::typing::TypingModel;
use crate::typogen::{self, TypoCandidate};
use crate::DomainName;
use serde::{Deserialize, Serialize};

/// One correction suggestion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Correction {
    /// The likely intended domain.
    pub target: DomainName,
    /// Posterior weight (normalized across suggestions).
    pub confidence: f64,
    /// The mistake that would explain the typo.
    pub candidate: TypoCandidate,
}

/// Whether mistyping `typed` for `intended` is a plausible fat-finger
/// slip — a direct read of the precomputed [`keyboard::ADJACENCY`] table
/// shared with the typo engine and the fat-finger distance. Input-field
/// integrations use this to decide how eagerly to surface a "did you
/// mean" hint: adjacent-key substitutions are overwhelmingly accidents,
/// while distant-key differences more often mean deliberate input.
pub fn fat_finger_slip(intended: char, typed: char) -> bool {
    intended.is_ascii()
        && typed.is_ascii()
        && keyboard::ADJACENCY[intended as usize][typed as usize]
}

/// Suggests intended domains for possibly-mistyped input.
///
/// Construction builds a reverse DL-1 index over the known targets
/// (deletion-neighborhood keying — see
/// [`crate::revindex::ReverseDl1Index`]), so each lookup is a handful of
/// hash probes over the input's own neighborhood — cheap enough to run on
/// every keystroke of an address field, and far cheaper to build than the
/// old forward map that materialized every target's full DL-1 fan-out.
#[derive(Debug)]
pub struct TypoCorrector {
    targets: PopularityList,
    model: TypingModel,
    /// Reverse DL-1 index over the target list, in popularity order.
    index: ReverseDl1Index,
    /// Emails-per-visitor factor converting popularity into volume.
    volume_factor: f64,
}

impl TypoCorrector {
    /// Builds a corrector over a popularity list of known-good domains.
    pub fn new(targets: PopularityList, model: TypingModel) -> Self {
        let domains: Vec<DomainName> = targets.iter().map(|entry| entry.domain.clone()).collect();
        let index = ReverseDl1Index::build(&domains);
        TypoCorrector {
            targets,
            model,
            index,
            volume_factor: 30.0,
        }
    }

    /// Whether `input` is itself a known-good domain (no correction).
    pub fn is_known(&self, input: &DomainName) -> bool {
        self.targets.get(input).is_some()
    }

    /// Ranks plausible intended targets for `input`.
    ///
    /// Returns an empty vec when the input is a known domain or nothing
    /// plausible is within one mistake. Confidences are normalized to
    /// sum to 1 over the returned suggestions.
    ///
    /// ```
    /// use ets_core::alexa;
    /// use ets_core::defense::TypoCorrector;
    /// use ets_core::typing::TypingModel;
    ///
    /// let corrector = TypoCorrector::new(alexa::synthetic_top(50), TypingModel::default());
    /// let typo: ets_core::DomainName = "gmial.com".parse().unwrap();
    /// let suggestions = corrector.suggest(&typo, 3);
    /// assert_eq!(suggestions[0].target.as_str(), "gmail.com");
    /// ```
    pub fn suggest(&self, input: &DomainName, limit: usize) -> Vec<Correction> {
        if self.is_known(input) {
            return Vec::new();
        }
        if !input.is_registrable() {
            // The old forward map was keyed by generated (two-label)
            // candidate domains, so subdomain input never matched.
            return Vec::new();
        }
        let mut scored: Vec<Correction> = Vec::new();
        // `explain` yields one candidate per matching target, in
        // popularity order — the same records, in the same order, that
        // the old forward map stored under this input. Corrections keep
        // the TLD the user typed (classification never crosses TLDs).
        for cand in self.index.explain(input) {
            let Some(entry) = self.targets.get(&cand.target) else {
                continue;
            };
            let volume = entry.monthly_visitors * self.volume_factor * 12.0;
            let weight = volume * self.model.mistype_probability(&cand);
            if weight > 0.0 {
                scored.push(Correction {
                    target: cand.target.clone(),
                    confidence: weight,
                    candidate: cand,
                });
            }
        }
        scored.sort_by(|a, b| b.confidence.partial_cmp(&a.confidence).expect("no NaN"));
        scored.truncate(limit);
        let total: f64 = scored.iter().map(|c| c.confidence).sum();
        if total > 0.0 {
            for c in &mut scored {
                c.confidence /= total;
            }
        }
        scored
    }

    /// Convenience check for a full email address string: corrects the
    /// domain part, leaving the local part alone (§8 explicitly scopes
    /// username typos out).
    pub fn suggest_for_address(&self, address: &str, limit: usize) -> Vec<Correction> {
        let Some((_, domain)) = address.rsplit_once('@') else {
            return Vec::new();
        };
        let Ok(d) = domain.parse::<DomainName>() else {
            return Vec::new();
        };
        self.suggest(&d, limit)
    }
}

/// One planned defensive registration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedRegistration {
    /// The typo domain to register.
    pub candidate: TypoCandidate,
    /// Expected intercepted emails per year.
    pub expected_emails: f64,
    /// Cumulative cost up to and including this registration.
    pub cumulative_cost: f64,
    /// Cumulative share of interceptable email covered.
    pub cumulative_coverage: f64,
}

/// Greedy defensive-registration plan for one target domain.
///
/// Ranks the target's unregistered gtypos by expected captured email and
/// takes them in order until `budget` is exhausted at `price_per_domain`.
/// `already_registered` (e.g. ctypos held by squatters or the owner)
/// are skipped — the paper notes the most valuable names are often taken,
/// which is exactly what makes early defensive registration cheap.
pub fn plan_registrations(
    target: &DomainName,
    yearly_email_volume: f64,
    model: &TypingModel,
    already_registered: &[DomainName],
    budget: f64,
    price_per_domain: f64,
) -> Vec<PlannedRegistration> {
    assert!(price_per_domain > 0.0, "domains are not free");
    let mut scored: Vec<(f64, TypoCandidate)> = typogen::generate_dl1(target)
        .into_iter()
        .filter(|c| !already_registered.contains(&c.domain))
        .map(|c| (model.expected_emails(yearly_email_volume, &c), c))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN"));
    let total_interceptable: f64 = scored.iter().map(|(e, _)| e).sum();
    let max_domains = (budget / price_per_domain).floor() as usize;
    let mut out = Vec::new();
    let mut covered = 0.0;
    for (expected, candidate) in scored.into_iter().take(max_domains) {
        covered += expected;
        out.push(PlannedRegistration {
            candidate,
            expected_emails: expected,
            cumulative_cost: (out.len() + 1) as f64 * price_per_domain,
            cumulative_coverage: if total_interceptable > 0.0 {
                covered / total_interceptable
            } else {
                0.0
            },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alexa;

    fn corrector() -> TypoCorrector {
        TypoCorrector::new(alexa::synthetic_top(50), TypingModel::default())
    }

    #[test]
    fn corrects_classic_typos() {
        let c = corrector();
        for (typed, expected) in [
            ("gmial.com", "gmail.com"),
            ("gmal.com", "gmail.com"),
            ("hotmial.com", "hotmail.com"),
            ("outlo0k.com", "outlook.com"),
            ("yaho.com", "yahoo.com"),
        ] {
            let typo: DomainName = typed.parse().unwrap();
            let s = c.suggest(&typo, 3);
            assert!(!s.is_empty(), "{typed} got no suggestions");
            assert_eq!(s[0].target.as_str(), expected, "{typed}");
        }
    }

    #[test]
    fn fat_finger_slip_agrees_with_generated_candidates() {
        // The defense-side adjacency helper reads the same const table the
        // typo engine used to set each candidate's fat_finger flag.
        let target: DomainName = "gmail.com".parse().unwrap();
        for cand in typogen::generate_dl1(&target) {
            if cand.kind == crate::typogen::MistakeKind::Substitution {
                let intended = target.sld().as_bytes()[cand.position] as char;
                let typed = cand.domain.sld().as_bytes()[cand.position] as char;
                assert_eq!(fat_finger_slip(intended, typed), cand.fat_finger);
            }
        }
        assert!(fat_finger_slip('g', 'h'));
        assert!(!fat_finger_slip('g', 'p'));
    }

    #[test]
    fn subdomain_input_gets_no_suggestions() {
        let c = corrector();
        let sub: DomainName = "smtp.gmial.com".parse().unwrap();
        assert!(c.suggest(&sub, 3).is_empty());
    }

    #[test]
    fn known_domains_are_not_corrected() {
        let c = corrector();
        let good: DomainName = "gmail.com".parse().unwrap();
        assert!(c.is_known(&good));
        assert!(c.suggest(&good, 3).is_empty());
    }

    #[test]
    fn unrelated_domains_get_no_suggestions() {
        let c = corrector();
        let unrelated: DomainName = "completely-unrelated-site.com".parse().unwrap();
        assert!(c.suggest(&unrelated, 3).is_empty());
    }

    #[test]
    fn confidences_normalized_and_sorted() {
        let c = corrector();
        // "mail.com" (rank 8) is DL-1 of "gmail.com"; both are targets, but
        // mail.com is itself known → no correction. Use an ambiguous typo.
        let typo: DomainName = "gmaul.com".parse().unwrap();
        let s = c.suggest(&typo, 5);
        assert!(!s.is_empty());
        let total: f64 = s.iter().map(|x| x.confidence).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for w in s.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn popularity_breaks_ties() {
        // A typo equidistant from a popular and an unpopular target should
        // prefer the popular one.
        let c = corrector();
        // "aol.com" rank 5 vs "cox.net": pick a typo of aol.
        let typo: DomainName = "aoll.com".parse().unwrap();
        let s = c.suggest(&typo, 3);
        assert_eq!(s[0].target.as_str(), "aol.com");
    }

    #[test]
    fn tld_is_preserved() {
        let c = corrector();
        // comcast.net is a target; a .com typo must not suggest it.
        let typo: DomainName = "comcastt.net".parse().unwrap();
        let s = c.suggest(&typo, 3);
        assert!(s.iter().all(|x| x.target.tld() == "net"), "{s:?}");
    }

    #[test]
    fn address_form() {
        let c = corrector();
        let s = c.suggest_for_address("alice@gmial.com", 2);
        assert_eq!(s[0].target.as_str(), "gmail.com");
        assert!(c.suggest_for_address("not-an-address", 2).is_empty());
    }

    #[test]
    fn plan_respects_budget_and_orders_by_yield() {
        let target: DomainName = "gmail.com".parse().unwrap();
        let model = TypingModel::default();
        let plan = plan_registrations(&target, 1e9, &model, &[], 85.0, 8.5);
        assert_eq!(plan.len(), 10, "budget buys exactly 10 domains");
        for w in plan.windows(2) {
            assert!(w[0].expected_emails >= w[1].expected_emails);
            assert!(w[1].cumulative_coverage >= w[0].cumulative_coverage);
        }
        assert!((plan.last().unwrap().cumulative_cost - 85.0).abs() < 1e-9);
        // The best deletions/transpositions head the list.
        assert!(plan[0].expected_emails > plan[9].expected_emails * 2.0);
    }

    #[test]
    fn plan_skips_taken_domains() {
        let target: DomainName = "gmail.com".parse().unwrap();
        let model = TypingModel::default();
        let full = plan_registrations(&target, 1e9, &model, &[], 17.0, 8.5);
        let taken = vec![full[0].candidate.domain.clone()];
        let constrained = plan_registrations(&target, 1e9, &model, &taken, 17.0, 8.5);
        assert!(constrained.iter().all(|p| p.candidate.domain != taken[0]));
        assert_eq!(constrained[0].candidate.domain, full[1].candidate.domain);
    }

    #[test]
    fn coverage_has_diminishing_returns() {
        // §8's point: the first few registrations cover most of the risk.
        let target: DomainName = "outlook.com".parse().unwrap();
        let model = TypingModel::default();
        let plan = plan_registrations(&target, 1e9, &model, &[], 8.5 * 30.0, 8.5);
        assert_eq!(plan.len(), 30);
        let ten = plan[9].cumulative_coverage;
        assert!(ten > 0.5, "first 10 of ~450 gtypos cover {ten:.2}");
    }
}
