//! Interned domain table: `u32` symbols over a contiguous byte arena.
//!
//! The measurement pipeline touches the same domain names millions of
//! times — every candidate lookup, ownership query, and funnel pass
//! re-hashes a heap-allocated `String`. [`DomainInterner`] stores each
//! distinct name once in a single arena and hands out a copyable
//! [`DomainId`]; lookups are a hash probe over arena slices (no per-query
//! allocation), and materializing a [`DomainName`] back out skips the
//! full parser via the crate-internal validated-parts fast path.
//!
//! Ids are assigned densely in first-intern order, so an interner doubles
//! as a stable index: `id.index()` addresses parallel side tables (the
//! ecosystem's ctypo records, the reverse DL-1 index's target lists).

use crate::domain::DomainName;
use std::collections::HashMap;

/// Symbol for an interned domain name. Copyable, 4 bytes, ordered by
/// first-intern order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(u32);

impl DomainId {
    /// The dense index of this id (0-based, first-intern order) for
    /// addressing side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// FNV-1a over a byte slice — the workspace's standard cheap stable hash
/// (same constants as the collector's funnel). Deterministic across runs
/// and platforms.
pub(crate) fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// FNV-1a offset basis: the seed for a fresh hash.
pub(crate) const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// An append-only table of distinct domain names backed by one `String`
/// arena.
#[derive(Debug, Default, Clone)]
pub struct DomainInterner {
    /// All names concatenated; name `i` spans `ends[i-1]..ends[i]`.
    arena: String,
    /// End offset of each name in `arena`.
    ends: Vec<u32>,
    /// Per-name offset of the sld/tld separator dot, relative to the
    /// name's start (mirrors `DomainName`'s `sld_end`).
    sld_ends: Vec<u32>,
    /// FNV(name) → candidate ids; collisions resolved by byte comparison.
    buckets: HashMap<u64, Vec<u32>>,
}

impl DomainInterner {
    /// An empty interner.
    pub fn new() -> DomainInterner {
        DomainInterner::default()
    }

    /// An empty interner with room for roughly `names` domains of
    /// `mean_len` bytes each.
    pub fn with_capacity(names: usize, mean_len: usize) -> DomainInterner {
        DomainInterner {
            arena: String::with_capacity(names * mean_len),
            ends: Vec::with_capacity(names),
            sld_ends: Vec::with_capacity(names),
            buckets: HashMap::with_capacity(names),
        }
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    fn span(&self, index: usize) -> (usize, usize) {
        let start = if index == 0 {
            0
        } else {
            self.ends[index - 1] as usize
        };
        (start, self.ends[index] as usize)
    }

    /// Interns `domain`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, domain: &DomainName) -> DomainId {
        let name = domain.as_str();
        let hash = fnv1a(FNV_OFFSET, name.as_bytes());
        if let Some(ids) = self.buckets.get(&hash) {
            for &id in ids {
                let (start, end) = self.span(id as usize);
                if &self.arena[start..end] == name {
                    return DomainId(id);
                }
            }
        }
        let id = self.ends.len() as u32;
        let start = self.arena.len();
        self.arena.push_str(name);
        self.ends.push(self.arena.len() as u32);
        let sld_end = name.rfind('.').expect("valid domain has a dot");
        self.sld_ends.push((start + sld_end) as u32);
        self.buckets.entry(hash).or_default().push(id);
        DomainId(id)
    }

    /// Looks up an already-interned name without allocating.
    pub fn lookup(&self, name: &str) -> Option<DomainId> {
        let hash = fnv1a(FNV_OFFSET, name.as_bytes());
        for &id in self.buckets.get(&hash)? {
            let (start, end) = self.span(id as usize);
            if &self.arena[start..end] == name {
                return Some(DomainId(id));
            }
        }
        None
    }

    /// The full name of `id` as a borrowed arena slice.
    pub fn name(&self, id: DomainId) -> &str {
        let (start, end) = self.span(id.index());
        &self.arena[start..end]
    }

    /// The second-level label of `id` (what typo generation mutates).
    pub fn sld(&self, id: DomainId) -> &str {
        let (start, _) = self.span(id.index());
        let head = &self.arena[start..self.sld_ends[id.index()] as usize];
        match head.rfind('.') {
            Some(i) => &head[i + 1..],
            None => head,
        }
    }

    /// The public suffix of `id`.
    pub fn tld(&self, id: DomainId) -> &str {
        let (_, end) = self.span(id.index());
        &self.arena[self.sld_ends[id.index()] as usize + 1..end]
    }

    /// Materializes `id` as an owned [`DomainName`] via the validated
    /// fast path — no re-parse, one allocation.
    pub fn domain(&self, id: DomainId) -> DomainName {
        let (start, _) = self.span(id.index());
        let name = self.name(id).to_owned();
        let sld_end = self.sld_ends[id.index()] as usize - start;
        DomainName::from_validated_parts(name, sld_end)
    }

    /// Ids in first-intern order.
    pub fn ids(&self) -> impl Iterator<Item = DomainId> {
        (0..self.ends.len() as u32).map(DomainId)
    }

    /// The id at dense `index` (0-based, first-intern order), if any.
    pub fn id_at(&self, index: usize) -> Option<DomainId> {
        (index < self.ends.len()).then_some(DomainId(index as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().expect("valid")
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut table = DomainInterner::new();
        let a = table.intern(&d("gmail.com"));
        let b = table.intern(&d("outlook.com"));
        let a2 = table.intern(&d("gmail.com"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn accessors_match_domain_name() {
        let mut table = DomainInterner::new();
        for name in ["gmail.com", "smtp.verizon.net", "a-b.org"] {
            let dom = d(name);
            let id = table.intern(&dom);
            assert_eq!(table.name(id), dom.as_str());
            assert_eq!(table.sld(id), dom.sld());
            assert_eq!(table.tld(id), dom.tld());
            assert_eq!(table.domain(id), dom);
        }
    }

    #[test]
    fn lookup_finds_only_interned() {
        let mut table = DomainInterner::new();
        let id = table.intern(&d("hotmail.com"));
        assert_eq!(table.lookup("hotmail.com"), Some(id));
        assert_eq!(table.lookup("hotmai1.com"), None);
    }

    #[test]
    fn ids_iterate_in_intern_order() {
        let mut table = DomainInterner::new();
        let names = ["x.com", "y.com", "z.com"];
        for name in names {
            table.intern(&d(name));
        }
        let round_trip: Vec<String> = table.ids().map(|id| table.name(id).to_owned()).collect();
        assert_eq!(round_trip, names);
    }
}
