//! The Section-6 typing-error model.
//!
//! The paper models sending an email as a two-step process (hypothesis H2):
//! the user types the address, then verifies it and possibly corrects a
//! mistake. The expected number of emails reaching typo domain *j* of
//! target *i* is
//!
//! ```text
//! E_ij = E_i · Pt_ij · (1 − Pc_ij)
//! ```
//!
//! where `E_i` is the target's email volume, `Pt_ij` the probability of
//! typing *j* instead of *i*, and `Pc_ij` the probability the mistake is
//! caught during verification. The paper cannot observe `Pt` and `Pc`
//! directly and instead regresses on proxies; this module provides a
//! concrete, parameterized instantiation that (a) the traffic generator
//! uses as ground truth and (b) the regression of [`crate::regress`] is
//! evaluated against — exactly the "simulate the unobservable" substitution
//! recorded in DESIGN.md.

use crate::typogen::{MistakeKind, TypoCandidate};
use serde::{Deserialize, Serialize};

/// Parameters of the typing-error model.
///
/// Defaults are calibrated so the paper's qualitative findings hold:
/// deletion and transposition mistakes are markedly more common than
/// addition and substitution (Figure 9); fat-finger variants are likelier
/// than arbitrary ones; visually glaring mistakes get corrected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypingModel {
    /// Probability that one *keystroke* goes wrong. Literature on typing
    /// errors puts this around 1–3%; the domain is short, so per-address
    /// mistake probability stays small.
    pub per_keystroke_error: f64,
    /// Relative weight of each mistake kind
    /// (addition, transposition, deletion, substitution) — Figure 9 order.
    pub kind_weights: [f64; 4],
    /// Multiplier applied to fat-finger variants relative to an arbitrary
    /// same-kind variant at the same position.
    pub fat_finger_boost: f64,
    /// Baseline probability a user catches *any* mistake when verifying.
    pub base_correction: f64,
    /// How steeply correction probability grows with normalized visual
    /// distance: `Pc = base + (1 - base) * (1 - exp(-steepness * v))`.
    pub visual_steepness: f64,
}

impl Default for TypingModel {
    fn default() -> Self {
        TypingModel {
            per_keystroke_error: 0.02,
            // Figure 9: deletion & transposition dominate; addition rarest.
            kind_weights: [0.10, 0.30, 0.40, 0.20],
            fat_finger_boost: 4.0,
            base_correction: 0.85,
            visual_steepness: 6.0,
        }
    }
}

impl TypingModel {
    /// Weight of one mistake kind.
    pub fn kind_weight(&self, kind: MistakeKind) -> f64 {
        match kind {
            MistakeKind::Addition => self.kind_weights[0],
            MistakeKind::Transposition => self.kind_weights[1],
            MistakeKind::Deletion => self.kind_weights[2],
            MistakeKind::Substitution => self.kind_weights[3],
        }
    }

    /// `Pt_ij`: probability of typing the candidate instead of its target.
    ///
    /// A mistake happens with probability `per_keystroke_error` per intended
    /// character; conditioned on a mistake at a position, its kind follows
    /// `kind_weights` and the specific variant is drawn uniformly among
    /// same-kind variants at that position, with fat-finger variants
    /// weighted up by `fat_finger_boost`.
    pub fn mistype_probability(&self, cand: &TypoCandidate) -> f64 {
        let len = cand.target.sld().len().max(1) as f64;
        let p_mistake_here = self.per_keystroke_error; // per position
        let kind_w = self.kind_weight(cand.kind);
        // Branching factor: how many same-kind variants compete at one
        // position (alphabet of 37 for addition/substitution; 1 for
        // deletion/transposition).
        let branching = match cand.kind {
            MistakeKind::Addition | MistakeKind::Substitution => 36.0,
            MistakeKind::Deletion | MistakeKind::Transposition => 1.0,
        };
        // The fat-finger boost only differentiates additions and
        // substitutions: a deletion or adjacent transposition is a
        // fat-finger slip by construction, so no variant of those kinds
        // is privileged over another.
        let ff = match cand.kind {
            MistakeKind::Addition | MistakeKind::Substitution if cand.fat_finger => {
                self.fat_finger_boost
            }
            _ => 1.0,
        };
        // Normalize the fat-finger boost crudely: a position has ~6 adjacent
        // keys out of 36 possibilities.
        let ff_norm = match cand.kind {
            MistakeKind::Addition | MistakeKind::Substitution => {
                (6.0 * self.fat_finger_boost + 30.0) / 36.0
            }
            _ => 1.0,
        };
        p_mistake_here * kind_w * ff / (branching * ff_norm) * position_factor(cand.position, len)
    }

    /// `Pc_ij`: probability the user notices and corrects the mistake while
    /// verifying the address. Driven by the normalized visual distance —
    /// an `o`→`0` swap survives verification far more often than `out`→`omt`.
    pub fn correction_probability(&self, cand: &TypoCandidate) -> f64 {
        let v = cand.visual_normalized();
        let p = self.base_correction
            + (1.0 - self.base_correction) * (1.0 - (-self.visual_steepness * v).exp());
        p.clamp(0.0, 1.0)
    }

    /// `E_ij = E_i · Pt_ij · (1 − Pc_ij)`: expected yearly emails reaching
    /// the candidate, given the target receives `target_volume` per year.
    pub fn expected_emails(&self, target_volume: f64, cand: &TypoCandidate) -> f64 {
        target_volume * self.mistype_probability(cand) * (1.0 - self.correction_probability(cand))
    }
}

/// Mistakes near the start of a name are slightly rarer (users look at what
/// they begin typing) — a mild linear effect.
fn position_factor(position: usize, len: f64) -> f64 {
    let rel = (position as f64 / len).clamp(0.0, 1.0);
    0.8 + 0.4 * rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typogen::generate_dl1;
    use crate::DomainName;

    fn candidates(target: &str) -> Vec<TypoCandidate> {
        let t: DomainName = target.parse().unwrap();
        generate_dl1(&t)
    }

    #[test]
    fn probabilities_are_probabilities() {
        let m = TypingModel::default();
        for cand in candidates("outlook.com") {
            let pt = m.mistype_probability(&cand);
            let pc = m.correction_probability(&cand);
            assert!((0.0..=1.0).contains(&pt), "Pt={pt} for {}", cand.domain);
            assert!((0.0..=1.0).contains(&pc), "Pc={pc} for {}", cand.domain);
        }
    }

    #[test]
    fn deletion_beats_addition_on_average() {
        let m = TypingModel::default();
        let cands = candidates("hotmail.com");
        let avg = |kind: MistakeKind| {
            let v: Vec<f64> = cands
                .iter()
                .filter(|c| c.kind == kind)
                .map(|c| m.mistype_probability(c))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(MistakeKind::Deletion) > avg(MistakeKind::Addition));
        assert!(avg(MistakeKind::Transposition) > avg(MistakeKind::Substitution));
    }

    #[test]
    fn fat_finger_variants_likelier() {
        let m = TypingModel::default();
        let cands = candidates("verizon.com");
        // Compare substitutions at the same position with/without adjacency.
        let ff = cands
            .iter()
            .find(|c| c.kind == MistakeKind::Substitution && c.fat_finger)
            .unwrap();
        let non = cands
            .iter()
            .find(|c| {
                c.kind == MistakeKind::Substitution && !c.fat_finger && c.position == ff.position
            })
            .unwrap();
        assert!(m.mistype_probability(ff) > m.mistype_probability(non));
    }

    #[test]
    fn visible_mistakes_get_corrected() {
        let m = TypingModel::default();
        let cands = candidates("outlook.com");
        let invisible = cands
            .iter()
            .find(|c| c.domain.as_str() == "outlo0k.com")
            .unwrap();
        let glaring = cands
            .iter()
            .find(|c| c.domain.as_str() == "outmook.com")
            .unwrap();
        assert!(m.correction_probability(invisible) < m.correction_probability(glaring));
    }

    #[test]
    fn expected_emails_scales_with_volume() {
        let m = TypingModel::default();
        let cands = candidates("gmail.com");
        let c = &cands[0];
        let e1 = m.expected_emails(1e6, c);
        let e2 = m.expected_emails(2e6, c);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_shape_top_typos_are_low_visual_ff1() {
        // §4.4.2: "FF-1 domains always receive the most emails if the typing
        // mistake is not totally obvious" — the model's best candidates for
        // outlook should be low-visual FF-1 names like outlo0k / ohtlook.
        let m = TypingModel::default();
        let mut subs: Vec<TypoCandidate> = candidates("outlook.com")
            .into_iter()
            .filter(|c| c.kind == MistakeKind::Substitution)
            .collect();
        subs.sort_by(|a, b| {
            m.expected_emails(1e9, b)
                .partial_cmp(&m.expected_emails(1e9, a))
                .unwrap()
        });
        // The best substitution must be the invisible fat-finger o→0 swap.
        assert_eq!(
            subs[0].domain.as_str(),
            "outlo0k.com",
            "got {:?}",
            subs.iter()
                .take(5)
                .map(|c| c.domain.as_str())
                .collect::<Vec<_>>()
        );
        assert!(subs[0].fat_finger);
        // and visible non-adjacent swaps rank far below
        let pos_of = |name: &str| subs.iter().position(|c| c.domain.as_str() == name).unwrap();
        assert!(pos_of("out-ook.com") > pos_of("outlo0k.com"));
    }

    #[test]
    fn position_factor_monotone() {
        assert!(position_factor(0, 7.0) < position_factor(6, 7.0));
        assert!(position_factor(0, 7.0) >= 0.8);
        assert!(position_factor(7, 7.0) <= 1.2 + 1e-9);
    }

    #[test]
    fn total_mistype_mass_is_bounded() {
        // Summing Pt over *all* DL-1 candidates of a target must stay well
        // below 1: most attempts type the domain correctly.
        let m = TypingModel::default();
        for target in ["gmail.com", "comcast.net", "yopmail.com"] {
            let total: f64 = candidates(target)
                .iter()
                .map(|c| m.mistype_probability(c))
                .sum();
            assert!(total < 0.5, "{target}: total Pt = {total}");
        }
    }
}
