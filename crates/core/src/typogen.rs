//! Typo candidate generation ("gtypos").
//!
//! Generates every Damerau-Levenshtein-distance-one variant of a target
//! domain's second-level label, tagged with the mistake type (addition,
//! deletion, substitution, transposition — Figure 9's categories), the
//! position of the mistake, whether the variant is also at fat-finger
//! distance one, and its visual distance from the target.
//!
//! The gtypo set of the Alexa top-10,000 contains millions of candidates
//! (§4.2.1); generation is allocation-conscious and deduplicated.

use crate::distance;
use crate::domain::DomainName;
use crate::keyboard;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// The four DL-1 typing-mistake types of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MistakeKind {
    /// One extra character typed (`gmail` → `gmaiql`).
    Addition,
    /// One character omitted (`zohomail` → `zohomil`).
    Deletion,
    /// One character replaced (`hotmail` → `hovmail`).
    Substitution,
    /// Two neighboring characters swapped (`gmail` → `gmial`).
    Transposition,
}

impl MistakeKind {
    /// All four kinds, in Figure 9's display order.
    pub const ALL: [MistakeKind; 4] = [
        MistakeKind::Addition,
        MistakeKind::Transposition,
        MistakeKind::Deletion,
        MistakeKind::Substitution,
    ];
}

impl fmt::Display for MistakeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MistakeKind::Addition => "addition",
            MistakeKind::Deletion => "deletion",
            MistakeKind::Substitution => "substitution",
            MistakeKind::Transposition => "transposition",
        };
        f.write_str(s)
    }
}

/// A generated typo candidate of some target domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypoCandidate {
    /// The typo domain itself.
    pub domain: DomainName,
    /// The target it was generated from.
    pub target: DomainName,
    /// Which of the four DL-1 mistakes produced it.
    pub kind: MistakeKind,
    /// Zero-based position of the mistake within the second-level label.
    pub position: usize,
    /// Whether the candidate is also at fat-finger distance one.
    pub fat_finger: bool,
    /// Visual distance from the target (unnormalized; see
    /// [`crate::distance::visual`]).
    pub visual: f64,
}

impl TypoCandidate {
    /// Visual distance normalized by target SLD length, the feature the
    /// Section-6 regression consumes.
    pub fn visual_normalized(&self) -> f64 {
        self.visual / self.target.sld().len() as f64
    }
}

/// Generates all distinct DL-1 typo candidates of `target`'s second-level
/// label, keeping the TLD fixed.
///
/// Candidates equal to the target, syntactically invalid (leading/trailing
/// hyphen), or duplicating another candidate are skipped; when several
/// operations produce the same string, the earliest in the order
/// deletion → transposition → substitution → addition at the smallest
/// position wins (deletions and transpositions are the most frequent
/// mistakes per Figure 9, so ties attribute to the likelier cause).
///
/// ```
/// use ets_core::typogen::generate_dl1;
/// let typos = generate_dl1(&"gmail.com".parse().unwrap());
/// assert!(typos.iter().any(|t| t.domain.as_str() == "gmial.com"));
/// assert!(typos.iter().all(|t| t.domain.as_str() != "gmail.com"));
/// ```
pub fn generate_dl1(target: &DomainName) -> Vec<TypoCandidate> {
    let sld: Vec<char> = target.sld().chars().collect();
    let n = sld.len();
    let mut seen: HashSet<String> = HashSet::new();
    seen.insert(target.sld().to_owned());
    let mut out = Vec::new();

    let mut push = |variant: String, kind: MistakeKind, position: usize, out: &mut Vec<_>| {
        if variant.starts_with('-') || variant.ends_with('-') || variant.is_empty() {
            return;
        }
        if !seen.insert(variant.clone()) {
            return;
        }
        let Ok(domain) = target.with_sld(&variant) else {
            return;
        };
        let fat_finger = distance::is_ff1(target.sld(), &variant);
        let visual = distance::visual(target.sld(), &variant);
        out.push(TypoCandidate {
            domain,
            target: target.clone(),
            kind,
            position,
            fat_finger,
            visual,
        });
    };

    // Deletions.
    for i in 0..n {
        let mut v = String::with_capacity(n - 1);
        v.extend(sld.iter().take(i));
        v.extend(sld.iter().skip(i + 1));
        push(v, MistakeKind::Deletion, i, &mut out);
    }
    // Transpositions of neighbors.
    for i in 0..n.saturating_sub(1) {
        if sld[i] == sld[i + 1] {
            continue;
        }
        let mut v: Vec<char> = sld.clone();
        v.swap(i, i + 1);
        push(v.into_iter().collect(), MistakeKind::Transposition, i, &mut out);
    }
    // Substitutions.
    for i in 0..n {
        for c in keyboard::alphabet() {
            if c == sld[i] {
                continue;
            }
            let mut v: Vec<char> = sld.clone();
            v[i] = c;
            push(v.into_iter().collect(), MistakeKind::Substitution, i, &mut out);
        }
    }
    // Additions (insert before position i, 0..=n).
    for i in 0..=n {
        for c in keyboard::alphabet() {
            let mut v = String::with_capacity(n + 1);
            v.extend(sld.iter().take(i));
            v.push(c);
            v.extend(sld.iter().skip(i));
            push(v, MistakeKind::Addition, i, &mut out);
        }
    }
    out
}

/// Generates only the fat-finger-distance-one subset (the registration
/// strategy of §4.2.1: "most of the typo domains we generated have a
/// fat-finger distance of one").
pub fn generate_ff1(target: &DomainName) -> Vec<TypoCandidate> {
    generate_dl1(target)
        .into_iter()
        .filter(|t| t.fat_finger)
        .collect()
}

/// Generates gtypos for a whole target list, deduplicating candidates that
/// are DL-1 from several targets (kept once, attributed to the target whose
/// visual distance is smallest — the most plausible victim).
///
/// The per-target DL-1 fan-out (the expensive part — millions of
/// candidates for the Alexa top-10,000) runs data-parallel; the dedup
/// merge walks the per-target result vectors in target order, so ties
/// between equally-distant attributions resolve exactly as the
/// sequential loop did and the output is identical for any thread count.
pub fn generate_for_targets(targets: &[DomainName]) -> Vec<TypoCandidate> {
    let per_target: Vec<Vec<TypoCandidate>> =
        ets_parallel::par_map(targets, |_, t| generate_dl1(t));
    let mut best: std::collections::HashMap<DomainName, TypoCandidate> =
        std::collections::HashMap::new();
    let target_set: HashSet<&DomainName> = targets.iter().collect();
    for cands in per_target {
        for cand in cands {
            // A gtypo that is itself a target is not a typo domain.
            if target_set.contains(&cand.domain) {
                continue;
            }
            match best.get(&cand.domain) {
                Some(prev) if prev.visual <= cand.visual => {}
                _ => {
                    best.insert(cand.domain.clone(), cand);
                }
            }
        }
    }
    let mut out: Vec<TypoCandidate> = best.into_values().collect();
    out.sort_by(|a, b| a.domain.cmp(&b.domain));
    out
}

/// Count of DL-1 candidates of a label of length `n` over an alphabet of
/// size `a`, before deduplication: `n` deletions + `n-1` transpositions +
/// `n(a-1)` substitutions + `(n+1)a` additions.
pub fn dl1_upper_bound(label_len: usize, alphabet_size: usize) -> usize {
    let n = label_len;
    let a = alphabet_size;
    n + n.saturating_sub(1) + n * (a - 1) + (n + 1) * a
}

/// Doppelganger ("missing dot") typos of a set of subdomains, per the Godai
/// white paper discussed in §2: `ca.ibm.com` → `caibm.com`.
pub fn generate_doppelgangers(subdomains: &[DomainName]) -> Vec<TypoCandidate> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for s in subdomains {
        if let Some(d) = s.doppelganger() {
            if seen.insert(d.clone()) {
                let visual = 0.35; // a missing dot is a thin-glyph deletion
                out.push(TypoCandidate {
                    domain: d,
                    target: s.clone(),
                    kind: MistakeKind::Deletion,
                    position: s.labels().next().map(str::len).unwrap_or(0),
                    fat_finger: true,
                    visual,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn all_candidates_are_dl1() {
        let t = d("gmail.com");
        for cand in generate_dl1(&t) {
            assert_eq!(
                distance::damerau_levenshtein(t.sld(), cand.domain.sld()),
                1,
                "{} not DL-1 of gmail",
                cand.domain
            );
            assert_eq!(cand.domain.tld(), "com");
        }
    }

    #[test]
    fn no_duplicates_and_no_target() {
        let t = d("gmail.com");
        let typos = generate_dl1(&t);
        let mut set = HashSet::new();
        for c in &typos {
            assert!(set.insert(c.domain.clone()), "duplicate {}", c.domain);
            assert_ne!(c.domain, t);
        }
    }

    #[test]
    fn contains_paper_examples() {
        let typos = generate_dl1(&d("gmail.com"));
        let names: HashSet<&str> = typos.iter().map(|t| t.domain.as_str()).collect();
        for expect in ["gmial.com", "gmaiql.com", "gmai-l.com", "gmil.com", "gnail.com"] {
            assert!(names.contains(expect), "missing {expect}");
        }
        let typos = generate_dl1(&d("outlook.com"));
        let names: HashSet<&str> = typos.iter().map(|t| t.domain.as_str()).collect();
        for expect in ["outlo0k.com", "ohtlook.com", "outmook.com", "o7tlook.com", "outloook.com"] {
            assert!(names.contains(expect), "missing {expect}");
        }
    }

    #[test]
    fn kinds_are_attributed() {
        let typos = generate_dl1(&d("gmail.com"));
        let find = |name: &str| typos.iter().find(|t| t.domain.as_str() == name).unwrap();
        assert_eq!(find("gmial.com").kind, MistakeKind::Transposition);
        assert_eq!(find("gmil.com").kind, MistakeKind::Deletion);
        assert_eq!(find("gmqil.com").kind, MistakeKind::Substitution);
        assert_eq!(find("gmaiql.com").kind, MistakeKind::Addition);
    }

    #[test]
    fn ff1_subset_is_consistent() {
        let t = d("outlook.com");
        let ff = generate_ff1(&t);
        assert!(!ff.is_empty());
        for c in &ff {
            assert!(c.fat_finger);
            assert_eq!(distance::fat_finger(t.sld(), c.domain.sld()), Some(1));
        }
        let all = generate_dl1(&t);
        assert!(ff.len() < all.len());
    }

    #[test]
    fn hyphen_edges_excluded() {
        let typos = generate_dl1(&d("gmail.com"));
        for c in &typos {
            assert!(!c.domain.sld().starts_with('-'));
            assert!(!c.domain.sld().ends_with('-'));
        }
    }

    #[test]
    fn candidate_count_close_to_upper_bound() {
        // 37-character alphabet; dedup removes only a handful (doubled
        // letters, hyphen-edge cases).
        let t = d("gmail.com");
        let ub = dl1_upper_bound(5, 37);
        let got = generate_dl1(&t).len();
        assert!(got <= ub);
        assert!(got > ub * 8 / 10, "got {got}, ub {ub}");
    }

    #[test]
    fn single_char_label() {
        let typos = generate_dl1(&d("x.org"));
        assert!(!typos.is_empty());
        for c in &typos {
            assert_eq!(distance::damerau_levenshtein("x", c.domain.sld()), 1);
        }
        // no transpositions possible, deletion would be empty
        assert!(typos.iter().all(|c| c.kind != MistakeKind::Transposition));
        assert!(typos.iter().all(|c| c.kind != MistakeKind::Deletion));
    }

    #[test]
    fn multi_target_dedup_prefers_visually_closer() {
        // "gmsil.com" is DL-1 of gmail; also check a candidate reachable from
        // two targets is kept once.
        let targets = [d("gmail.com"), d("gmal.com")];
        let typos = generate_for_targets(&targets);
        let mut counts = std::collections::HashMap::new();
        for t in &typos {
            *counts.entry(t.domain.clone()).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&v| v == 1));
        // neither target appears as a candidate of the other
        assert!(typos.iter().all(|t| t.domain != targets[0] && t.domain != targets[1]));
    }

    #[test]
    fn doppelgangers() {
        let subs = [d("ca.ibm.com"), d("smtp.gmail.com"), d("mail.google.com")];
        let dg = generate_doppelgangers(&subs);
        let names: Vec<&str> = dg.iter().map(|t| t.domain.as_str()).collect();
        assert_eq!(names, vec!["caibm.com", "smtpgmail.com", "mailgoogle.com"]);
    }

    #[test]
    fn visual_normalization() {
        let t = d("outlook.com");
        let typos = generate_dl1(&t);
        let c = typos.iter().find(|c| c.domain.as_str() == "outlo0k.com").unwrap();
        assert!((c.visual_normalized() - c.visual / 7.0).abs() < 1e-12);
    }
}
