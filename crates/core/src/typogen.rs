//! Typo candidate generation ("gtypos").
//!
//! Generates every Damerau-Levenshtein-distance-one variant of a target
//! domain's second-level label, tagged with the mistake type (addition,
//! deletion, substitution, transposition — Figure 9's categories), the
//! position of the mistake, whether the variant is also at fat-finger
//! distance one, and its visual distance from the target.
//!
//! The gtypo set of the Alexa top-10,000 contains millions of candidates
//! (§4.2.1). The engine is byte-level and allocation-free per candidate:
//! variants are built in one reusable scratch buffer, deduplication is
//! analytic (a variant is emitted only at the canonical run-start
//! position of its operation, which provably reproduces the legacy
//! `HashSet<String>` first-wins order), fat-finger membership is decided
//! per operation from the `const` keyboard table instead of running a
//! DP per candidate, and results land in a struct-of-arrays
//! [`TypoTable`]. [`generate_dl1`] remains as a thin wrapper that
//! materializes the table into the classic `Vec<TypoCandidate>`;
//! [`generate_dl1_legacy`] keeps the original string-based generator for
//! equivalence tests and benchmarks.

use crate::distance;
use crate::domain::{DomainName, MAX_LABEL_LEN, MAX_NAME_LEN};
use crate::keyboard;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// The four DL-1 typing-mistake types of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MistakeKind {
    /// One extra character typed (`gmail` → `gmaiql`).
    Addition,
    /// One character omitted (`zohomail` → `zohomil`).
    Deletion,
    /// One character replaced (`hotmail` → `hovmail`).
    Substitution,
    /// Two neighboring characters swapped (`gmail` → `gmial`).
    Transposition,
}

impl MistakeKind {
    /// All four kinds, in Figure 9's display order.
    pub const ALL: [MistakeKind; 4] = [
        MistakeKind::Addition,
        MistakeKind::Transposition,
        MistakeKind::Deletion,
        MistakeKind::Substitution,
    ];
}

impl fmt::Display for MistakeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MistakeKind::Addition => "addition",
            MistakeKind::Deletion => "deletion",
            MistakeKind::Substitution => "substitution",
            MistakeKind::Transposition => "transposition",
        };
        f.write_str(s)
    }
}

/// A generated typo candidate of some target domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypoCandidate {
    /// The typo domain itself.
    pub domain: DomainName,
    /// The target it was generated from.
    pub target: DomainName,
    /// Which of the four DL-1 mistakes produced it.
    pub kind: MistakeKind,
    /// Zero-based position of the mistake within the second-level label.
    pub position: usize,
    /// Whether the candidate is also at fat-finger distance one.
    pub fat_finger: bool,
    /// Visual distance from the target (unnormalized; see
    /// [`crate::distance::visual`]).
    pub visual: f64,
}

impl TypoCandidate {
    /// Visual distance normalized by target SLD length, the feature the
    /// Section-6 regression consumes.
    pub fn visual_normalized(&self) -> f64 {
        self.visual / self.target.sld().len() as f64
    }
}

/// Struct-of-arrays result of the byte-level DL-1 engine: one target, all
/// its typo variants' labels in a single string arena plus parallel
/// per-candidate columns. Iterating the columns costs no allocation;
/// [`TypoTable::candidate`] materializes a classic [`TypoCandidate`] on
/// demand.
#[derive(Debug, Clone)]
pub struct TypoTable {
    target: DomainName,
    /// Variant SLDs concatenated; variant `i` spans `ends[i-1]..ends[i]`.
    slds: String,
    ends: Vec<u32>,
    kinds: Vec<MistakeKind>,
    positions: Vec<u32>,
    fat_finger: Vec<bool>,
    visual: Vec<f64>,
}

impl TypoTable {
    /// Generates all distinct DL-1 variants of `target`'s second-level
    /// label. Candidate order, attribution, and scores are identical to
    /// [`generate_dl1_legacy`]: deletions, then transpositions, then
    /// substitutions, then additions, each position-ascending with the
    /// alphabet in `a..z 0..9 -` order, keeping only the canonical
    /// (smallest-position) representative of each distinct string.
    pub fn generate(target: &DomainName) -> TypoTable {
        let sld = target.sld().to_owned(); // detach from `target` borrow
        let s = sld.as_bytes();
        let n = s.len();
        let tld_len = target.tld().len();
        let cap = dl1_upper_bound(n, keyboard::ALPHABET.len());
        let mut table = TypoTable {
            target: target.clone(),
            slds: String::with_capacity(cap * (n + 1)),
            ends: Vec::with_capacity(cap),
            kinds: Vec::with_capacity(cap),
            positions: Vec::with_capacity(cap),
            fat_finger: Vec::with_capacity(cap),
            visual: Vec::with_capacity(cap),
        };
        let mut scratch = distance::VisualScratch::default();
        let mut buf: Vec<u8> = Vec::with_capacity(n + 1);

        // Deletions. Deleting any character of a run yields the same
        // string, so only the run start is emitted (the first-wins
        // winner); a single-character label would leave an empty label.
        if n >= 2 {
            for i in 0..n {
                if i > 0 && s[i] == s[i - 1] {
                    continue;
                }
                let first = if i == 0 { s[1] } else { s[0] };
                let last = if i == n - 1 { s[n - 2] } else { s[n - 1] };
                if first == b'-' || last == b'-' {
                    continue;
                }
                buf.clear();
                buf.extend_from_slice(&s[..i]);
                buf.extend_from_slice(&s[i + 1..]);
                table.push(s, &buf, MistakeKind::Deletion, i, true, &mut scratch);
            }
        }
        // Transpositions of distinct neighbors. Distinct transpositions
        // never collide with each other or any other kind (they differ
        // from the label in exactly two positions).
        for i in 0..n.saturating_sub(1) {
            if s[i] == s[i + 1] {
                continue;
            }
            if (i == 0 && s[1] == b'-') || (i + 2 == n && s[i] == b'-') {
                continue;
            }
            buf.clear();
            buf.extend_from_slice(s);
            buf.swap(i, i + 1);
            table.push(s, &buf, MistakeKind::Transposition, i, true, &mut scratch);
        }
        // Substitutions: all (position, char ≠ current) pairs are
        // distinct strings; fat-finger iff the keys are adjacent.
        for i in 0..n {
            for &c in &keyboard::ALPHABET {
                if c == s[i] {
                    continue;
                }
                if c == b'-' && (i == 0 || i == n - 1) {
                    continue;
                }
                buf.clear();
                buf.extend_from_slice(s);
                buf[i] = c;
                let ff = keyboard::adjacent_bytes(s[i], c);
                table.push(s, &buf, MistakeKind::Substitution, i, ff, &mut scratch);
            }
        }
        // Additions (insert before position i, 0..=n). Inserting `c`
        // anywhere along a run of `c` yields the same string; the run
        // start is canonical. The legacy parser rejected variants whose
        // label or full name exceeded the RFC limits, so gate on those.
        if n < MAX_LABEL_LEN && (n + 1) + 1 + tld_len <= MAX_NAME_LEN {
            for i in 0..=n {
                for &c in &keyboard::ALPHABET {
                    if i > 0 && s[i - 1] == c {
                        continue;
                    }
                    if c == b'-' && (i == 0 || i == n) {
                        continue;
                    }
                    // Fat-finger: the stray key equals or neighbors an
                    // intended character beside the insertion point.
                    let near = |x: u8| c == x || keyboard::adjacent_bytes(c, x);
                    let ff = (i > 0 && near(s[i - 1])) || (i < n && near(s[i]));
                    buf.clear();
                    buf.extend_from_slice(&s[..i]);
                    buf.push(c);
                    buf.extend_from_slice(&s[i..]);
                    table.push(s, &buf, MistakeKind::Addition, i, ff, &mut scratch);
                }
            }
        }
        table
    }

    fn push(
        &mut self,
        target_sld: &[u8],
        variant: &[u8],
        kind: MistakeKind,
        position: usize,
        fat_finger: bool,
        scratch: &mut distance::VisualScratch,
    ) {
        let visual = distance::visual_bytes(target_sld, variant, scratch);
        self.slds
            .push_str(std::str::from_utf8(variant).expect("domain labels are ASCII"));
        self.ends.push(self.slds.len() as u32);
        self.kinds.push(kind);
        self.positions.push(position as u32);
        self.fat_finger.push(fat_finger);
        self.visual.push(visual);
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the table holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// The target the table was generated from.
    pub fn target(&self) -> &DomainName {
        &self.target
    }

    /// The variant second-level label of candidate `i` (borrowed from the
    /// arena, no allocation).
    pub fn sld(&self, i: usize) -> &str {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.slds[start..self.ends[i] as usize]
    }

    /// Mistake kind of candidate `i`.
    pub fn kind(&self, i: usize) -> MistakeKind {
        self.kinds[i]
    }

    /// Mistake position of candidate `i` within the label.
    pub fn position(&self, i: usize) -> usize {
        self.positions[i] as usize
    }

    /// Whether candidate `i` is also at fat-finger distance one.
    pub fn fat_finger(&self, i: usize) -> bool {
        self.fat_finger[i]
    }

    /// Unnormalized visual distance of candidate `i` from the target.
    pub fn visual(&self, i: usize) -> f64 {
        self.visual[i]
    }

    /// Visual distance of candidate `i` normalized by target SLD length
    /// (the Section-6 regression feature).
    pub fn visual_normalized(&self, i: usize) -> f64 {
        self.visual[i] / self.target.sld().len() as f64
    }

    /// Materializes candidate `i` as an owned [`TypoCandidate`]
    /// (one name allocation, no re-parse).
    pub fn candidate(&self, i: usize) -> TypoCandidate {
        let sld = self.sld(i);
        let tld = self.target.tld();
        let mut name = String::with_capacity(sld.len() + 1 + tld.len());
        name.push_str(sld);
        name.push('.');
        name.push_str(tld);
        let sld_end = sld.len();
        TypoCandidate {
            domain: DomainName::from_validated_parts(name, sld_end),
            target: self.target.clone(),
            kind: self.kinds[i],
            position: self.positions[i] as usize,
            fat_finger: self.fat_finger[i],
            visual: self.visual[i],
        }
    }

    /// Materializes every candidate in order.
    pub fn into_candidates(self) -> Vec<TypoCandidate> {
        (0..self.len()).map(|i| self.candidate(i)).collect()
    }

    /// Iterates materialized candidates in order.
    pub fn iter(&self) -> impl Iterator<Item = TypoCandidate> + '_ {
        (0..self.len()).map(|i| self.candidate(i))
    }
}

/// Generates all distinct DL-1 typo candidates of `target`'s second-level
/// label, keeping the TLD fixed.
///
/// Candidates equal to the target, syntactically invalid (leading/trailing
/// hyphen), or duplicating another candidate are skipped; when several
/// operations produce the same string, the earliest in the order
/// deletion → transposition → substitution → addition at the smallest
/// position wins (deletions and transpositions are the most frequent
/// mistakes per Figure 9, so ties attribute to the likelier cause).
///
/// This is a thin wrapper over the byte-level [`TypoTable`] engine; the
/// output is byte-identical to the original string-based generator
/// (retained as [`generate_dl1_legacy`]).
///
/// ```
/// use ets_core::typogen::generate_dl1;
/// let typos = generate_dl1(&"gmail.com".parse().unwrap());
/// assert!(typos.iter().any(|t| t.domain.as_str() == "gmial.com"));
/// assert!(typos.iter().all(|t| t.domain.as_str() != "gmail.com"));
/// ```
pub fn generate_dl1(target: &DomainName) -> Vec<TypoCandidate> {
    TypoTable::generate(target).into_candidates()
}

/// The original string-based DL-1 generator: per-candidate `String`
/// allocation, `HashSet` first-wins dedup, per-candidate fat-finger DP.
/// Kept as the reference implementation for the equivalence property
/// tests and the `legacy` sides of the `ets-bench` microbenchmarks.
pub fn generate_dl1_legacy(target: &DomainName) -> Vec<TypoCandidate> {
    let sld: Vec<char> = target.sld().chars().collect();
    let n = sld.len();
    let mut seen: HashSet<String> = HashSet::new();
    seen.insert(target.sld().to_owned());
    let mut out = Vec::new();

    let mut push = |variant: String, kind: MistakeKind, position: usize, out: &mut Vec<_>| {
        if variant.starts_with('-') || variant.ends_with('-') || variant.is_empty() {
            return;
        }
        if seen.contains(&variant) {
            return;
        }
        let Ok(domain) = target.with_sld(&variant) else {
            seen.insert(variant);
            return;
        };
        let fat_finger = distance::fat_finger_legacy(target.sld(), &variant) == Some(1);
        let visual = distance::visual_legacy(target.sld(), &variant);
        seen.insert(variant);
        out.push(TypoCandidate {
            domain,
            target: target.clone(),
            kind,
            position,
            fat_finger,
            visual,
        });
    };

    // Deletions.
    for i in 0..n {
        let mut v = String::with_capacity(n - 1);
        v.extend(sld.iter().take(i));
        v.extend(sld.iter().skip(i + 1));
        push(v, MistakeKind::Deletion, i, &mut out);
    }
    // Transpositions of neighbors.
    for i in 0..n.saturating_sub(1) {
        if sld[i] == sld[i + 1] {
            continue;
        }
        let mut v: Vec<char> = sld.clone();
        v.swap(i, i + 1);
        push(
            v.into_iter().collect(),
            MistakeKind::Transposition,
            i,
            &mut out,
        );
    }
    // Substitutions.
    for i in 0..n {
        for c in keyboard::alphabet() {
            if c == sld[i] {
                continue;
            }
            let mut v: Vec<char> = sld.clone();
            v[i] = c;
            push(
                v.into_iter().collect(),
                MistakeKind::Substitution,
                i,
                &mut out,
            );
        }
    }
    // Additions (insert before position i, 0..=n).
    for i in 0..=n {
        for c in keyboard::alphabet() {
            let mut v = String::with_capacity(n + 1);
            v.extend(sld.iter().take(i));
            v.push(c);
            v.extend(sld.iter().skip(i));
            push(v, MistakeKind::Addition, i, &mut out);
        }
    }
    out
}

/// Classifies `typo` as a DL-1 variant of `target`, returning the same
/// [`TypoCandidate`] (kind, canonical position, fat-finger flag, visual
/// score) that [`generate_dl1`] would have produced for it, or `None`
/// when `typo` is not at DL distance exactly one from `target` with the
/// same TLD.
///
/// This is the verification half of the reverse DL-1 index
/// ([`crate::revindex::ReverseDl1Index`]): instead of regenerating a
/// target's full candidate set and searching it, a single O(len)
/// comparison recovers the candidate record.
///
/// ```
/// use ets_core::typogen::{classify_dl1, MistakeKind};
/// let target = "gmail.com".parse().unwrap();
/// let typo = "gmial.com".parse().unwrap();
/// let cand = classify_dl1(&target, &typo).unwrap();
/// assert_eq!(cand.kind, MistakeKind::Transposition);
/// assert_eq!(cand.position, 2);
/// assert!(classify_dl1(&target, &"gmx.com".parse().unwrap()).is_none());
/// ```
pub fn classify_dl1(target: &DomainName, typo: &DomainName) -> Option<TypoCandidate> {
    if target.tld() != typo.tld() {
        return None;
    }
    let s = target.sld().as_bytes();
    let t = typo.sld().as_bytes();
    let (kind, position) = classify_slds(s, t)?;
    let fat_finger = match kind {
        MistakeKind::Deletion | MistakeKind::Transposition => true,
        MistakeKind::Substitution => keyboard::adjacent_bytes(s[position], t[position]),
        MistakeKind::Addition => {
            let c = t[position];
            let near = |x: u8| c == x || keyboard::adjacent_bytes(c, x);
            (position > 0 && near(s[position - 1])) || (position < s.len() && near(s[position]))
        }
    };
    let mut scratch = distance::VisualScratch::default();
    let visual = distance::visual_bytes(s, t, &mut scratch);
    Some(TypoCandidate {
        domain: typo.clone(),
        target: target.clone(),
        kind,
        position,
        fat_finger,
        visual,
    })
}

/// Byte-level DL-1 classification of `t` against `s`: the mistake kind
/// and the *canonical* position (the run-start the generator attributes
/// duplicates to), or `None` if the labels are not at DL distance one.
fn classify_slds(s: &[u8], t: &[u8]) -> Option<(MistakeKind, usize)> {
    let n = s.len();
    let m = t.len();
    if m == n {
        let i = (0..n).find(|&i| s[i] != t[i])?;
        let j = (0..n).rfind(|&j| s[j] != t[j]).expect("some diff exists");
        if i == j {
            return Some((MistakeKind::Substitution, i));
        }
        if j == i + 1 && s[i] == t[j] && s[j] == t[i] {
            return Some((MistakeKind::Transposition, i));
        }
        None
    } else if m + 1 == n {
        // t is s with s[i] deleted, where i is the first difference.
        let i = (0..m).find(|&i| s[i] != t[i]).unwrap_or(m);
        if s[i + 1..] != t[i..] {
            return None;
        }
        // Canonicalize to the run start of the deleted character.
        let mut p = i;
        while p > 0 && s[p - 1] == s[i] {
            p -= 1;
        }
        Some((MistakeKind::Deletion, p))
    } else if m == n + 1 {
        // t is s with t[i] inserted, where i is the first difference.
        let i = (0..n).find(|&i| s[i] != t[i]).unwrap_or(n);
        if t[i + 1..] != s[i..] {
            return None;
        }
        // Canonicalize to the run start of the inserted character.
        let c = t[i];
        let mut p = i;
        while p > 0 && t[p - 1] == c {
            p -= 1;
        }
        Some((MistakeKind::Addition, p))
    } else {
        None
    }
}

/// Generates only the fat-finger-distance-one subset (the registration
/// strategy of §4.2.1: "most of the typo domains we generated have a
/// fat-finger distance of one").
pub fn generate_ff1(target: &DomainName) -> Vec<TypoCandidate> {
    let table = TypoTable::generate(target);
    (0..table.len())
        .filter(|&i| table.fat_finger(i))
        .map(|i| table.candidate(i))
        .collect()
}

/// Generates gtypos for a whole target list, deduplicating candidates that
/// are DL-1 from several targets (kept once, attributed to the target whose
/// visual distance is smallest — the most plausible victim).
///
/// The per-target DL-1 fan-out (the expensive part — millions of
/// candidates for the Alexa top-10,000) runs data-parallel; the dedup
/// merge walks the per-target result vectors in target order, so ties
/// between equally-distant attributions resolve exactly as the
/// sequential loop did and the output is identical for any thread count.
pub fn generate_for_targets(targets: &[DomainName]) -> Vec<TypoCandidate> {
    let per_target: Vec<Vec<TypoCandidate>> =
        ets_parallel::par_map(targets, |_, t| generate_dl1(t));
    let mut best: std::collections::HashMap<DomainName, TypoCandidate> =
        std::collections::HashMap::new();
    let target_set: HashSet<&DomainName> = targets.iter().collect();
    for cands in per_target {
        for cand in cands {
            // A gtypo that is itself a target is not a typo domain.
            if target_set.contains(&cand.domain) {
                continue;
            }
            match best.get(&cand.domain) {
                Some(prev) if prev.visual <= cand.visual => {}
                _ => {
                    best.insert(cand.domain.clone(), cand);
                }
            }
        }
    }
    let mut out: Vec<TypoCandidate> = best.into_values().collect();
    out.sort_by(|a, b| a.domain.cmp(&b.domain));
    out
}

/// Count of DL-1 candidates of a label of length `n` over an alphabet of
/// size `a`, before deduplication: `n` deletions + `n-1` transpositions +
/// `n(a-1)` substitutions + `(n+1)a` additions.
pub fn dl1_upper_bound(label_len: usize, alphabet_size: usize) -> usize {
    let n = label_len;
    let a = alphabet_size;
    n + n.saturating_sub(1) + n * (a - 1) + (n + 1) * a
}

/// Doppelganger ("missing dot") typos of a set of subdomains, per the Godai
/// white paper discussed in §2: `ca.ibm.com` → `caibm.com`.
pub fn generate_doppelgangers(subdomains: &[DomainName]) -> Vec<TypoCandidate> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for s in subdomains {
        if let Some(d) = s.doppelganger() {
            if seen.insert(d.clone()) {
                let visual = 0.35; // a missing dot is a thin-glyph deletion
                out.push(TypoCandidate {
                    domain: d,
                    target: s.clone(),
                    kind: MistakeKind::Deletion,
                    position: s.labels().next().map(str::len).unwrap_or(0),
                    fat_finger: true,
                    visual,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn all_candidates_are_dl1() {
        let t = d("gmail.com");
        for cand in generate_dl1(&t) {
            assert_eq!(
                distance::damerau_levenshtein(t.sld(), cand.domain.sld()),
                1,
                "{} not DL-1 of gmail",
                cand.domain
            );
            assert_eq!(cand.domain.tld(), "com");
        }
    }

    #[test]
    fn no_duplicates_and_no_target() {
        let t = d("gmail.com");
        let typos = generate_dl1(&t);
        let mut set = HashSet::new();
        for c in &typos {
            assert!(set.insert(c.domain.as_str()), "duplicate {}", c.domain);
            assert_ne!(c.domain, t);
        }
    }

    #[test]
    fn engine_matches_legacy_generator() {
        for name in [
            "gmail.com",
            "outlook.com",
            "aa.org",
            "x.org",
            "a-b.net",
            "zzzaaa.com",
        ] {
            let t = d(name);
            assert_eq!(generate_dl1(&t), generate_dl1_legacy(&t), "{name}");
        }
    }

    #[test]
    fn classify_recovers_generated_candidates() {
        for name in ["gmail.com", "aa.org", "a-b.net"] {
            let t = d(name);
            for cand in generate_dl1(&t) {
                let back = classify_dl1(&t, &cand.domain).expect("DL-1 by construction");
                assert_eq!(back, cand, "{name} -> {}", cand.domain);
            }
        }
    }

    #[test]
    fn classify_rejects_non_dl1() {
        let t = d("gmail.com");
        assert!(classify_dl1(&t, &d("gmail.com")).is_none()); // equal
        assert!(classify_dl1(&t, &d("gmx.com")).is_none()); // DL 3
        assert!(classify_dl1(&t, &d("gmial.net")).is_none()); // tld differs
    }

    #[test]
    fn contains_paper_examples() {
        let typos = generate_dl1(&d("gmail.com"));
        let names: HashSet<&str> = typos.iter().map(|t| t.domain.as_str()).collect();
        for expect in [
            "gmial.com",
            "gmaiql.com",
            "gmai-l.com",
            "gmil.com",
            "gnail.com",
        ] {
            assert!(names.contains(expect), "missing {expect}");
        }
        let typos = generate_dl1(&d("outlook.com"));
        let names: HashSet<&str> = typos.iter().map(|t| t.domain.as_str()).collect();
        for expect in [
            "outlo0k.com",
            "ohtlook.com",
            "outmook.com",
            "o7tlook.com",
            "outloook.com",
        ] {
            assert!(names.contains(expect), "missing {expect}");
        }
    }

    #[test]
    fn kinds_are_attributed() {
        let typos = generate_dl1(&d("gmail.com"));
        let find = |name: &str| typos.iter().find(|t| t.domain.as_str() == name).unwrap();
        assert_eq!(find("gmial.com").kind, MistakeKind::Transposition);
        assert_eq!(find("gmil.com").kind, MistakeKind::Deletion);
        assert_eq!(find("gmqil.com").kind, MistakeKind::Substitution);
        assert_eq!(find("gmaiql.com").kind, MistakeKind::Addition);
    }

    #[test]
    fn ff1_subset_is_consistent() {
        let t = d("outlook.com");
        let ff = generate_ff1(&t);
        assert!(!ff.is_empty());
        for c in &ff {
            assert!(c.fat_finger);
            assert_eq!(distance::fat_finger(t.sld(), c.domain.sld()), Some(1));
        }
        let all = generate_dl1(&t);
        assert!(ff.len() < all.len());
    }

    #[test]
    fn hyphen_edges_excluded() {
        let typos = generate_dl1(&d("gmail.com"));
        for c in &typos {
            assert!(!c.domain.sld().starts_with('-'));
            assert!(!c.domain.sld().ends_with('-'));
        }
    }

    #[test]
    fn candidate_count_close_to_upper_bound() {
        // 37-character alphabet; dedup removes only a handful (doubled
        // letters, hyphen-edge cases).
        let t = d("gmail.com");
        let ub = dl1_upper_bound(5, 37);
        let got = generate_dl1(&t).len();
        assert!(got <= ub);
        assert!(got > ub * 8 / 10, "got {got}, ub {ub}");
    }

    #[test]
    fn single_char_label() {
        let typos = generate_dl1(&d("x.org"));
        assert!(!typos.is_empty());
        for c in &typos {
            assert_eq!(distance::damerau_levenshtein("x", c.domain.sld()), 1);
        }
        // no transpositions possible, deletion would be empty
        assert!(typos.iter().all(|c| c.kind != MistakeKind::Transposition));
        assert!(typos.iter().all(|c| c.kind != MistakeKind::Deletion));
    }

    #[test]
    fn table_columns_match_candidates() {
        let t = d("outlook.com");
        let table = TypoTable::generate(&t);
        let cands = generate_dl1(&t);
        assert_eq!(table.len(), cands.len());
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(table.sld(i), c.domain.sld());
            assert_eq!(table.kind(i), c.kind);
            assert_eq!(table.position(i), c.position);
            assert_eq!(table.fat_finger(i), c.fat_finger);
            assert_eq!(table.visual(i).to_bits(), c.visual.to_bits());
            assert_eq!(
                table.visual_normalized(i).to_bits(),
                c.visual_normalized().to_bits()
            );
            assert_eq!(table.candidate(i), *c);
        }
        assert_eq!(table.iter().collect::<Vec<_>>(), cands);
    }

    #[test]
    fn multi_target_dedup_prefers_visually_closer() {
        // "gmsil.com" is DL-1 of gmail; also check a candidate reachable from
        // two targets is kept once.
        let targets = [d("gmail.com"), d("gmal.com")];
        let typos = generate_for_targets(&targets);
        let mut counts = std::collections::HashMap::new();
        for t in &typos {
            *counts.entry(t.domain.as_str()).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&v| v == 1));
        // neither target appears as a candidate of the other
        assert!(typos
            .iter()
            .all(|t| t.domain != targets[0] && t.domain != targets[1]));
    }

    #[test]
    fn doppelgangers() {
        let subs = [d("ca.ibm.com"), d("smtp.gmail.com"), d("mail.google.com")];
        let dg = generate_doppelgangers(&subs);
        let names: Vec<&str> = dg.iter().map(|t| t.domain.as_str()).collect();
        assert_eq!(names, vec!["caibm.com", "smtpgmail.com", "mailgoogle.com"]);
    }

    #[test]
    fn visual_normalization() {
        let t = d("outlook.com");
        let typos = generate_dl1(&t);
        let c = typos
            .iter()
            .find(|c| c.domain.as_str() == "outlo0k.com")
            .unwrap();
        assert!((c.visual_normalized() - c.visual / 7.0).abs() < 1e-12);
    }
}
