//! The Section-6 projection model.
//!
//! The paper predicts the yearly email volume of a typo domain from three
//! features, in square-root response space:
//!
//! * log of the target's Alexa rank,
//! * square root of the visual distance normalized by target length,
//! * fat-finger distance (0 or 1).
//!
//! The fitted model (R² = 0.74; LOOCV R² = 0.63) is then applied to the
//! 1,211 ctypo domains of the five seed targets, yielding ≈260,514
//! emails/year (95% CI 22,577–905,174). Because the registered corpus
//! lacked deletion/transposition typos of popular providers, a correction
//! derived from Alexa traffic of existing ctypos (Figure 9) scales the
//! projection to ≈846,219 (95% CI 58,460–4,039,500).

use crate::stats::ci::ConfidenceInterval;
use crate::stats::regression::{FitError, Ols, OlsFit};
use crate::stats::{mean_confidence_interval, t_critical};
use crate::typogen::{MistakeKind, TypoCandidate};
use serde::{Deserialize, Serialize};

/// One training observation: a typo domain the study operated, with its
/// measured yearly email count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The typo candidate (carries target, mistake kind, visual distance).
    pub candidate: TypoCandidate,
    /// Alexa rank of the target domain.
    pub target_rank: usize,
    /// Measured "legitimate" (post-funnel) emails per year.
    pub yearly_emails: f64,
}

/// Feature vector of the Section-6 regression.
pub fn features(candidate: &TypoCandidate, target_rank: usize) -> [f64; 3] {
    [
        (target_rank.max(1) as f64).ln(),
        candidate.visual_normalized().max(0.0).sqrt(),
        if candidate.fat_finger { 1.0 } else { 0.0 },
    ]
}

/// The fitted projection model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectionModel {
    fit: OlsFit,
    /// Training R².
    pub r_squared: f64,
    /// Leave-one-out cross-validated R².
    pub loocv_r_squared: f64,
}

impl ProjectionModel {
    /// Fits the model on observations from the study's own domains.
    pub fn fit(observations: &[Observation]) -> Result<ProjectionModel, FitError> {
        let mut ols = Ols::new();
        for obs in observations {
            let x = features(&obs.candidate, obs.target_rank);
            ols.push(&x, obs.yearly_emails.max(0.0).sqrt())?;
        }
        let fit = ols.fit()?;
        let loocv = ols.loocv_r_squared()?;
        Ok(ProjectionModel {
            r_squared: fit.r_squared,
            loocv_r_squared: loocv,
            fit,
        })
    }

    /// Predicted yearly emails for one candidate (response is fit in sqrt
    /// space, so the prediction is squared back; negative sqrt-space
    /// predictions clamp to zero).
    pub fn predict(&self, candidate: &TypoCandidate, target_rank: usize) -> f64 {
        let x = features(candidate, target_rank);
        let s = self.fit.predict(&x).max(0.0);
        s * s
    }

    /// Projects total yearly volume over a population of candidates, with a
    /// 95% confidence interval.
    ///
    /// The interval propagates the fit's residual standard error: each
    /// prediction in sqrt space carries ±t·SE, and the bounds square and
    /// sum those per-domain extremes — a deliberately conservative
    /// (wide) interval, matching the paper's very wide reported ranges.
    pub fn project_total(
        &self,
        candidates: &[(TypoCandidate, usize)],
        confidence: f64,
    ) -> Projection {
        let t = t_critical(confidence, self.fit.n.saturating_sub(4).max(1));
        let se = self.fit.residual_se;
        let mut total = 0.0;
        let mut lo = 0.0;
        let mut hi = 0.0;
        for (cand, rank) in candidates {
            let x = features(cand, *rank);
            let s = self.fit.predict(&x).max(0.0);
            total += s * s;
            let s_lo = (s - t * se).max(0.0);
            let s_hi = s + t * se;
            lo += s_lo * s_lo;
            hi += s_hi * s_hi;
        }
        Projection {
            expected: total,
            interval: ConfidenceInterval {
                mean: total,
                lo,
                hi,
                confidence,
            },
            domains: candidates.len(),
        }
    }
}

/// A projected yearly total with its confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// Expected yearly emails across the population.
    pub expected: f64,
    /// Confidence interval on the total.
    pub interval: ConfidenceInterval,
    /// Number of domains projected over.
    pub domains: usize,
}

/// The Figure-9 mistake-type correction.
///
/// The registered corpus under-represents deletion and transposition typos
/// (the good ones were taken), so the paper measures the *relative Alexa
/// popularity* of existing ctypos per mistake type and scales the
/// projection by the ratio of each type's mean popularity to the mean over
/// the types present in the corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MistakeTypePopularity {
    /// Mean relative popularity per kind, Figure 9 order
    /// (addition, transposition, deletion, substitution).
    pub means: [f64; 4],
    /// 95% CI half-widths per kind.
    pub half_widths: [f64; 4],
}

impl MistakeTypePopularity {
    /// Estimates from per-domain relative popularity samples grouped by
    /// mistake kind. Outliers (per MAD, 3σ) are dropped before averaging,
    /// as in §6.1. Returns `None` if any kind has fewer than two samples.
    pub fn estimate(samples: &[(MistakeKind, f64)]) -> Option<MistakeTypePopularity> {
        let mut means = [0.0; 4];
        let mut half_widths = [0.0; 4];
        for (i, kind) in MistakeKind::ALL.iter().enumerate() {
            let mut vals: Vec<f64> = samples
                .iter()
                .filter(|(k, _)| k == kind)
                .map(|&(_, v)| v)
                .collect();
            if vals.len() < 2 {
                return None;
            }
            let outliers = crate::stats::mad_outliers(&vals, 3.0);
            let mut keep: Vec<f64> = Vec::with_capacity(vals.len());
            for (idx, v) in vals.drain(..).enumerate() {
                if !outliers.contains(&idx) {
                    keep.push(v);
                }
            }
            let ci = mean_confidence_interval(&keep, 0.95)?;
            means[i] = ci.mean;
            half_widths[i] = ci.half_width();
        }
        Some(MistakeTypePopularity { means, half_widths })
    }

    /// Mean popularity of one kind.
    pub fn mean_of(&self, kind: MistakeKind) -> f64 {
        let i = MistakeKind::ALL.iter().position(|k| *k == kind).unwrap();
        self.means[i]
    }

    /// Scaling factor to apply to a projection trained only on kinds
    /// `trained_on`: ratio of the all-kind mean to the trained-kind mean,
    /// weighted by each kind's share of the candidate population
    /// (uniform weights here, matching the paper's aggregate correction).
    pub fn correction_factor(&self, trained_on: &[MistakeKind]) -> f64 {
        let all_mean: f64 = self.means.iter().sum::<f64>() / 4.0;
        let trained: Vec<f64> = MistakeKind::ALL
            .iter()
            .zip(self.means.iter())
            .filter(|(k, _)| trained_on.contains(k))
            .map(|(_, &m)| m)
            .collect();
        if trained.is_empty() {
            return 1.0;
        }
        let trained_mean = trained.iter().sum::<f64>() / trained.len() as f64;
        if trained_mean <= 0.0 {
            1.0
        } else {
            all_mean / trained_mean
        }
    }
}

/// Cost model of §6.2: a registration costs about $8.50/year, so the cost
/// per captured email is `registrations × price / yearly emails`.
pub fn cost_per_email(domains: usize, yearly_emails: f64, price_per_domain: f64) -> f64 {
    if yearly_emails <= 0.0 {
        return f64::INFINITY;
    }
    domains as f64 * price_per_domain / yearly_emails
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typing::TypingModel;
    use crate::typogen::generate_dl1;
    use crate::DomainName;

    /// Builds a synthetic training set from the typing model: the
    /// regression should recover the model's structure well enough to give
    /// a respectable R².
    fn training_set() -> Vec<Observation> {
        let model = TypingModel::default();
        let targets = [
            ("gmail.com", 1usize, 4.0e9),
            ("hotmail.com", 2, 2.5e9),
            ("outlook.com", 3, 2.2e9),
            ("comcast.net", 8, 6.0e8),
            ("verizon.net", 9, 5.0e8),
        ];
        let mut out = Vec::new();
        for (name, rank, volume) in targets {
            let t: DomainName = name.parse().unwrap();
            for cand in generate_dl1(&t).into_iter().step_by(17).take(5) {
                let y = model.expected_emails(volume, &cand);
                out.push(Observation {
                    candidate: cand,
                    target_rank: rank,
                    yearly_emails: y,
                });
            }
        }
        out
    }

    #[test]
    fn fits_with_positive_r2() {
        let model = ProjectionModel::fit(&training_set()).unwrap();
        assert!(model.r_squared > 0.2, "R² = {}", model.r_squared);
        assert!(model.loocv_r_squared <= model.r_squared + 1e-9);
    }

    #[test]
    fn predictions_are_nonnegative() {
        let model = ProjectionModel::fit(&training_set()).unwrap();
        let t: DomainName = "yahoo.com".parse().unwrap();
        for cand in generate_dl1(&t).into_iter().take(50) {
            assert!(model.predict(&cand, 4) >= 0.0);
        }
    }

    #[test]
    fn popular_targets_predict_more() {
        let model = ProjectionModel::fit(&training_set()).unwrap();
        let t: DomainName = "gmail.com".parse().unwrap();
        let cand = generate_dl1(&t)
            .into_iter()
            .find(|c| c.domain.as_str() == "gmial.com")
            .unwrap();
        let popular = model.predict(&cand, 1);
        let obscure = model.predict(&cand, 100_000);
        assert!(popular > obscure);
    }

    #[test]
    fn projection_interval_brackets_expectation() {
        let model = ProjectionModel::fit(&training_set()).unwrap();
        let t: DomainName = "aol.com".parse().unwrap();
        let cands: Vec<(TypoCandidate, usize)> = generate_dl1(&t)
            .into_iter()
            .take(100)
            .map(|c| (c, 5usize))
            .collect();
        let proj = model.project_total(&cands, 0.95);
        assert_eq!(proj.domains, 100);
        assert!(proj.interval.lo <= proj.expected);
        assert!(proj.interval.hi >= proj.expected);
        assert!(proj.interval.hi > proj.interval.lo);
    }

    #[test]
    fn mistake_popularity_estimation_and_correction() {
        // Deletion/transposition twice as popular as addition/substitution.
        let mut samples = Vec::new();
        for i in 0..10 {
            let jitter = (i as f64) * 0.01;
            samples.push((MistakeKind::Addition, 0.5 + jitter));
            samples.push((MistakeKind::Substitution, 0.5 + jitter));
            samples.push((MistakeKind::Deletion, 1.0 + jitter));
            samples.push((MistakeKind::Transposition, 1.0 + jitter));
        }
        let pop = MistakeTypePopularity::estimate(&samples).unwrap();
        assert!(pop.mean_of(MistakeKind::Deletion) > pop.mean_of(MistakeKind::Addition));
        // Trained only on addition+substitution: factor > 1 scales up.
        let f = pop.correction_factor(&[MistakeKind::Addition, MistakeKind::Substitution]);
        assert!(f > 1.2 && f < 2.0, "factor {f}");
        // Trained on everything: factor 1.
        let f_all = pop.correction_factor(&MistakeKind::ALL);
        assert!((f_all - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mistake_popularity_drops_outliers() {
        let mut samples = Vec::new();
        for kind in MistakeKind::ALL {
            for i in 0..8 {
                samples.push((kind, 1.0 + i as f64 * 0.01));
            }
        }
        // A benign-collision ctypo with enormous accidental traffic.
        samples.push((MistakeKind::Deletion, 500.0));
        let pop = MistakeTypePopularity::estimate(&samples).unwrap();
        assert!(pop.mean_of(MistakeKind::Deletion) < 2.0);
    }

    #[test]
    fn missing_kind_yields_none() {
        let samples = vec![(MistakeKind::Addition, 1.0), (MistakeKind::Addition, 2.0)];
        assert!(MistakeTypePopularity::estimate(&samples).is_none());
    }

    #[test]
    fn cost_model() {
        // §6.2: 1,211 domains × $8.5 ÷ 846,219 emails ≈ 1.2 cents
        let c = cost_per_email(1211, 846_219.0, 8.5);
        assert!(c < 0.02, "cost {c}");
        assert!(c > 0.005);
        assert_eq!(cost_per_email(10, 0.0, 8.5), f64::INFINITY);
    }
}
