//! Distance metrics between domain names.
//!
//! Three metrics from the paper's Section 3:
//!
//! * [`damerau_levenshtein`] — minimum number of insertions, deletions,
//!   substitutions, or transpositions of adjacent characters (the "DL"
//!   distance; typosquatting papers conventionally use DL-1).
//! * [`fat_finger`] — Moore & Edelman's restriction of DL where every
//!   operation must involve characters adjacent on a QWERTY keyboard
//!   (an FF-1 typo is always a DL-1 typo).
//! * [`visual`] — a heuristic measuring how different a mistyped string
//!   *looks*, built from per-character confusability weights (`o`/`0` and
//!   `l`/`1` are nearly invisible; `g`/`h` is glaring).

use crate::keyboard;

/// Damerau-Levenshtein distance (restricted edit distance with adjacent
/// transpositions), computed over the full strings.
///
/// This is the "optimal string alignment" variant used throughout the
/// typosquatting literature: a substring may not be edited more than once,
/// which is exactly the regime of single typing mistakes that DL-1 captures.
///
/// ```
/// use ets_core::distance::damerau_levenshtein;
/// assert_eq!(damerau_levenshtein("gmail", "gmial"), 1); // transposition
/// assert_eq!(damerau_levenshtein("gmail", "gmal"), 1);  // deletion
/// assert_eq!(damerau_levenshtein("gmail", "gmaiql"), 1); // addition
/// assert_eq!(damerau_levenshtein("gmail", "gmaik"), 1); // substitution
/// assert_eq!(damerau_levenshtein("gmail", "gmail"), 0);
/// ```
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    dl_matrix(&a, &b, |_, _| true)
}

/// Fat-finger distance: like [`damerau_levenshtein`], but substitutions and
/// insertions only count as a single operation when the characters involved
/// are QWERTY-adjacent; otherwise that alignment is forbidden (treated as
/// unreachable, cost ∞ for the restricted operation).
///
/// Deletions and transpositions are always allowed (deleting a character or
/// swapping two neighbors is a fat-finger slip regardless of geometry),
/// matching Moore & Edelman's definition where the *typed* stray character
/// must be adjacent to an intended one. An inserted character equal to a
/// neighboring intended character is also allowed: double-pressing a key is
/// the canonical fat-finger insertion (`outlook` → `outloook`).
///
/// Returns `None` when `b` cannot be produced from `a` by *any* sequence
/// of fat-finger operations. Note that a non-FF-1 string may still have a
/// finite fat-finger distance greater than one via a chain of allowed
/// operations (e.g. a deletion plus an adjacent insertion); use
/// [`is_ff1`] when testing the single-mistake regime the paper studies.
///
/// ```
/// use ets_core::distance::fat_finger;
/// assert_eq!(fat_finger("outlook", "outlo0k"), Some(1));  // 0 adjacent to o
/// assert_eq!(fat_finger("outlook", "outloook"), Some(1)); // doubled key
/// assert_eq!(fat_finger("gmail", "gmial"), Some(1));      // transposition
/// assert_ne!(fat_finger("verizon", "vexizon"), Some(1));  // x not near r
/// ```
pub fn fat_finger(a: &str, b: &str) -> Option<usize> {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let d = dl_matrix_ff(&av, &bv);
    if d > av.len() + bv.len() {
        None
    } else {
        Some(d)
    }
}

/// True when `typo` is at fat-finger distance exactly one from `target`.
pub fn is_ff1(target: &str, typo: &str) -> bool {
    fat_finger(target, typo) == Some(1)
}

/// True when `typo` is at Damerau-Levenshtein distance exactly one from
/// `target`.
pub fn is_dl1(target: &str, typo: &str) -> bool {
    damerau_levenshtein(target, typo) == 1
}

#[allow(clippy::needless_range_loop)] // DP matrix init reads clearer indexed
fn dl_matrix(a: &[char], b: &[char], _allowed: impl Fn(char, char) -> bool) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let w = m + 1;
    let mut d = vec![0usize; (n + 1) * w];
    for i in 0..=n {
        d[i * w] = i;
    }
    for j in 0..=m {
        d[j] = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[(i - 1) * w + j] + 1) // deletion
                .min(d[i * w + j - 1] + 1) // insertion
                .min(d[(i - 1) * w + j - 1] + cost); // substitution / match
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[(i - 2) * w + j - 2] + 1); // transposition
            }
            d[i * w + j] = best;
        }
    }
    d[n * w + m]
}

/// Fat-finger DL matrix: substitutions require adjacency between the
/// intended and the typed character; insertions require the inserted
/// character to be adjacent to a neighboring intended character.
fn dl_matrix_ff(a: &[char], b: &[char]) -> usize {
    const INF: usize = usize::MAX / 4;
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        // Pure insertion of arbitrary characters is not a fat-finger typo
        // unless each inserted character is adjacent to something intended;
        // with an empty reference there is nothing to be adjacent to.
        return if n == m { 0 } else { INF };
    }
    let w = m + 1;
    let mut d = vec![INF; (n + 1) * w];
    d[0] = 0;
    for i in 1..=n {
        d[i * w] = i; // deletions always allowed
    }
    for j in 1..=m {
        // Leading insertions: inserted b[j-1] must neighbor (or equal —
        // doubled keypress) the first intended character a[0].
        if (b[j - 1] == a[0] || keyboard::adjacent(b[j - 1], a[0])) && d[j - 1] < INF {
            d[j] = d[j - 1] + 1;
        }
    }
    for i in 1..=n {
        for j in 1..=m {
            let mut best = INF;
            // deletion of a[i-1]
            if d[(i - 1) * w + j] < INF {
                best = best.min(d[(i - 1) * w + j] + 1);
            }
            // insertion of b[j-1]: the stray key must be adjacent to (or a
            // double-press of) an intended character next to the insertion
            // point.
            if d[i * w + j - 1] < INF {
                let near = |x: char| b[j - 1] == x || keyboard::adjacent(b[j - 1], x);
                if near(a[i - 1]) || (i < n && near(a[i])) {
                    best = best.min(d[i * w + j - 1] + 1);
                }
            }
            // match / substitution
            if d[(i - 1) * w + j - 1] < INF {
                if a[i - 1] == b[j - 1] {
                    best = best.min(d[(i - 1) * w + j - 1]);
                } else if keyboard::adjacent(a[i - 1], b[j - 1]) {
                    best = best.min(d[(i - 1) * w + j - 1] + 1);
                }
            }
            // transposition
            if i > 1
                && j > 1
                && a[i - 1] == b[j - 2]
                && a[i - 2] == b[j - 1]
                && d[(i - 2) * w + j - 2] < INF
            {
                best = best.min(d[(i - 2) * w + j - 2] + 1);
            }
            d[i * w + j] = best;
        }
    }
    d[n * w + m]
}

/// Visual confusability of substituting `typed` for `intended`, in `[0, 1]`:
/// `0.0` means the substitution is essentially invisible, `1.0` maximally
/// conspicuous.
///
/// The heuristic encodes the paper's observation that letter/digit
/// look-alikes (`o`/`0`, `l`/`1`) are far more likely to go unnoticed than
/// two different letters, and that some letter pairs (`i`/`l`, `m`/`n`,
/// `u`/`v`) are themselves easily confused.
pub fn char_confusability(intended: char, typed: char) -> f64 {
    let (a, b) = (
        intended.to_ascii_lowercase(),
        typed.to_ascii_lowercase(),
    );
    if a == b {
        return 0.0;
    }
    // Near-identical glyph pairs.
    const NEAR: &[(char, char, f64)] = &[
        ('o', '0', 0.05),
        ('l', '1', 0.05),
        ('i', '1', 0.10),
        ('i', 'l', 0.10),
        ('i', 'j', 0.25),
        ('m', 'n', 0.25),
        ('u', 'v', 0.25),
        ('v', 'w', 0.30),
        ('u', 'w', 0.40),
        ('c', 'e', 0.40),
        ('e', 'o', 0.45),
        ('c', 'o', 0.40),
        ('g', 'q', 0.35),
        ('b', 'd', 0.45),
        ('p', 'q', 0.45),
        ('h', 'n', 0.40),
        ('f', 't', 0.45),
        ('s', '5', 0.30),
        ('b', '8', 0.35),
        ('g', '9', 0.40),
        ('z', '2', 0.40),
        ('a', '4', 0.50),
        ('t', '7', 0.50),
        ('e', '3', 0.40),
    ];
    for &(x, y, v) in NEAR {
        if (a == x && b == y) || (a == y && b == x) {
            return v;
        }
    }
    let digit_a = a.is_ascii_digit();
    let digit_b = b.is_ascii_digit();
    match (digit_a, digit_b) {
        // Letter for letter: moderately visible.
        (false, false) if a != '-' && b != '-' => 0.8,
        // Digit for digit.
        (true, true) => 0.7,
        // Letter/digit with no glyph similarity: glaring.
        (true, false) | (false, true) => 0.9,
        // Hyphen involved: a dash in a name is conspicuous but thin.
        _ => 0.6,
    }
}

/// Visual distance between a target name and a candidate typo.
///
/// Aligns the two strings with a DL trace and sums per-operation visual
/// weights: substitutions use [`char_confusability`]; transpositions of two
/// characters are mildly visible (0.3); a deletion is weighted by how much
/// the string shrinks visually (thin glyphs like `i`, `l` barely register);
/// an addition weighs like the inserted glyph's prominence. The result is
/// *not* normalized; the Section-6 regression normalizes by target length.
///
/// ```
/// use ets_core::distance::visual;
/// // outlo0k looks much closer to outlook than outmook does
/// assert!(visual("outlook", "outlo0k") < visual("outlook", "outmook"));
/// ```
pub fn visual(target: &str, typo: &str) -> f64 {
    let a: Vec<char> = target.chars().collect();
    let b: Vec<char> = typo.chars().collect();
    visual_cost(&a, &b)
}

fn glyph_prominence(c: char) -> f64 {
    match c {
        'i' | 'l' | '1' | 'j' | '.' | '-' => 0.35,
        't' | 'f' | 'r' => 0.55,
        'm' | 'w' => 0.9,
        _ => 0.7,
    }
}

fn visual_cost(a: &[char], b: &[char]) -> f64 {
    let (n, m) = (a.len(), b.len());
    let w = m + 1;
    let mut d = vec![f64::INFINITY; (n + 1) * w];
    d[0] = 0.0;
    for i in 1..=n {
        d[i * w] = d[(i - 1) * w] + glyph_prominence(a[i - 1]);
    }
    for j in 1..=m {
        d[j] = d[j - 1] + glyph_prominence(b[j - 1]);
    }
    for i in 1..=n {
        for j in 1..=m {
            let del = d[(i - 1) * w + j] + glyph_prominence(a[i - 1]);
            let ins = d[i * w + j - 1] + glyph_prominence(b[j - 1]);
            let sub_cost = if a[i - 1] == b[j - 1] {
                0.0
            } else {
                char_confusability(a[i - 1], b[j - 1])
            };
            let sub = d[(i - 1) * w + j - 1] + sub_cost;
            let mut best = del.min(ins).min(sub);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] && a[i - 1] != a[i - 2]
            {
                best = best.min(d[(i - 2) * w + j - 2] + 0.3);
            }
            d[i * w + j] = best;
        }
    }
    d[n * w + m]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dl_identity() {
        assert_eq!(damerau_levenshtein("gmail", "gmail"), 0);
        assert_eq!(damerau_levenshtein("", ""), 0);
    }

    #[test]
    fn dl_empty() {
        assert_eq!(damerau_levenshtein("", "abc"), 3);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
    }

    #[test]
    fn dl_single_ops() {
        assert_eq!(damerau_levenshtein("hotmail", "hotmial"), 1); // transposition
        assert_eq!(damerau_levenshtein("hotmail", "hotmal"), 1); // deletion
        assert_eq!(damerau_levenshtein("hotmail", "hotmaill"), 1); // addition
        assert_eq!(damerau_levenshtein("hotmail", "hovmail"), 1); // substitution
    }

    #[test]
    fn dl_counts_multiple_ops() {
        assert_eq!(damerau_levenshtein("gmail", "gmx"), 3);
        assert_eq!(damerau_levenshtein("verizon", "horizon"), 2);
    }

    #[test]
    fn dl_transposition_not_two_substitutions() {
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("abcd", "acbd"), 1);
    }

    #[test]
    fn ff_implies_dl() {
        // Every FF-1 pair must be DL-1 (the paper states this implication).
        let pairs = [
            ("outlook", "outlo0k"),
            ("outlook", "ohtlook"),
            ("outlook", "outloook"),
            ("hotmail", "ho6mail"),
            ("verizon", "ve5izon"),
        ];
        for (t, typo) in pairs {
            assert_eq!(fat_finger(t, typo), Some(1), "{t} -> {typo}");
            assert_eq!(damerau_levenshtein(t, typo), 1, "{t} -> {typo}");
        }
    }

    #[test]
    fn ff_rejects_distant_keys() {
        assert_ne!(fat_finger("verizon", "vexizon"), Some(1)); // r vs x
        assert_eq!(fat_finger("gmail", "gmqil"), Some(1)); // a vs q adjacent
        assert_eq!(fat_finger("gmail", "gmzil"), Some(1)); // a vs z adjacent
        assert_ne!(fat_finger("gmail", "gmpil"), Some(1)); // a vs p distant
    }

    #[test]
    fn ff_deletion_always_allowed() {
        assert_eq!(fat_finger("yopmail", "yopail"), Some(1));
        assert_eq!(fat_finger("zohomail", "zohomil"), Some(1));
    }

    #[test]
    fn ff_transposition_always_allowed() {
        assert_eq!(fat_finger("zohomail", "zohomial"), Some(1));
    }

    #[test]
    fn ff_insertion_needs_adjacency() {
        // k is adjacent to both i and l, so inserting it between them is FF-1.
        assert_eq!(fat_finger("gmail", "gmaikl"), Some(1));
        // Inserting x between a and i: x neighbors z,c,s,d — none of a/i/l,
        // so the single-insertion route is forbidden and the cheapest
        // fat-finger route needs several operations.
        assert!(fat_finger("gmail", "gmaxil").is_none_or(|d| d > 1));
        // gmaiql (a domain the paper registered) is DL-1 but NOT FF-1:
        // q neighbors neither i nor l.
        assert_eq!(damerau_levenshtein("gmail", "gmaiql"), 1);
        assert!(!is_ff1("gmail", "gmaiql"));
    }

    #[test]
    fn ff_double_press_insertion() {
        assert_eq!(fat_finger("outlook", "outloook"), Some(1));
        assert_eq!(fat_finger("gmail", "ggmail"), Some(1));
        assert_eq!(fat_finger("gmail", "gmaill"), Some(1));
    }

    #[test]
    fn ff_identity_is_zero() {
        assert_eq!(fat_finger("comcast", "comcast"), Some(0));
    }

    #[test]
    fn visual_lookalikes_are_cheap() {
        assert!(visual("outlook", "outlo0k") < 0.2);
        assert!(visual("paypal", "paypa1") < 0.2);
    }

    #[test]
    fn visual_orders_paper_examples() {
        // §4.4.2: for a target, low-visual-distance FF-1 typos win.
        assert!(visual("outlook", "outlo0k") < visual("outlook", "outmook"));
        assert!(visual("verizon", "evrizon") < visual("verizon", "vebizon") + 0.5);
        assert!(visual("gmail", "gmial") < visual("gmail", "qmail"));
    }

    #[test]
    fn visual_zero_iff_equal() {
        assert_eq!(visual("gmail", "gmail"), 0.0);
        assert!(visual("gmail", "gmial") > 0.0);
    }

    #[test]
    fn visual_deletion_weights_glyph() {
        // Deleting thin 'i' is less visible than deleting wide 'm'.
        assert!(visual("gmail", "gmal") < visual("gmail", "gail"));
    }

    #[test]
    fn confusability_symmetric() {
        for a in crate::keyboard::alphabet() {
            for b in crate::keyboard::alphabet() {
                assert_eq!(
                    char_confusability(a, b),
                    char_confusability(b, a),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn confusability_bounds() {
        for a in crate::keyboard::alphabet() {
            for b in crate::keyboard::alphabet() {
                let v = char_confusability(a, b);
                assert!((0.0..=1.0).contains(&v));
                if a == b {
                    assert_eq!(v, 0.0);
                } else {
                    assert!(v > 0.0);
                }
            }
        }
    }
}
