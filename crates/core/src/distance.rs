//! Distance metrics between domain names.
//!
//! Three metrics from the paper's Section 3:
//!
//! * [`damerau_levenshtein`] — minimum number of insertions, deletions,
//!   substitutions, or transpositions of adjacent characters (the "DL"
//!   distance; typosquatting papers conventionally use DL-1).
//! * [`fat_finger`] — Moore & Edelman's restriction of DL where every
//!   operation must involve characters adjacent on a QWERTY keyboard
//!   (an FF-1 typo is always a DL-1 typo).
//! * [`visual`] — a heuristic measuring how different a mistyped string
//!   *looks*, built from per-character confusability weights (`o`/`0` and
//!   `l`/`1` are nearly invisible; `g`/`h` is glaring).
//!
//! Domain labels are ASCII, so every metric has a byte-level kernel: the
//! DL distance runs a three-row DP with common-affix trimming and early
//! outs, the fat-finger DP reads the `const` [`keyboard::ADJACENCY`]
//! table, and the visual DP reads `const` per-byte-pair confusability and
//! glyph-prominence tables. Each fast kernel performs the *same*
//! floating-point operations in the same order as the original `char`
//! implementation, so results are bit-identical; the originals survive as
//! `*_legacy` reference functions for equivalence tests and benchmarks.

use crate::keyboard;

/// Damerau-Levenshtein distance (restricted edit distance with adjacent
/// transpositions), computed over the full strings.
///
/// This is the "optimal string alignment" variant used throughout the
/// typosquatting literature: a substring may not be edited more than once,
/// which is exactly the regime of single typing mistakes that DL-1 captures.
///
/// ```
/// use ets_core::distance::damerau_levenshtein;
/// assert_eq!(damerau_levenshtein("gmail", "gmial"), 1); // transposition
/// assert_eq!(damerau_levenshtein("gmail", "gmal"), 1);  // deletion
/// assert_eq!(damerau_levenshtein("gmail", "gmaiql"), 1); // addition
/// assert_eq!(damerau_levenshtein("gmail", "gmaik"), 1); // substitution
/// assert_eq!(damerau_levenshtein("gmail", "gmail"), 0);
/// ```
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    if a.is_ascii() && b.is_ascii() {
        dl_bytes(a.as_bytes(), b.as_bytes())
    } else {
        damerau_levenshtein_legacy(a, b)
    }
}

/// Reference `char`-level implementation of [`damerau_levenshtein`]
/// (full DP matrix, no early-outs). Kept for the equivalence property
/// tests and the `legacy` sides of the `ets-bench` microbenchmarks.
pub fn damerau_levenshtein_legacy(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    dl_matrix(&a, &b)
}

/// Fat-finger distance: like [`damerau_levenshtein`], but substitutions and
/// insertions only count as a single operation when the characters involved
/// are QWERTY-adjacent; otherwise that alignment is forbidden (treated as
/// unreachable, cost ∞ for the restricted operation).
///
/// Deletions and transpositions are always allowed (deleting a character or
/// swapping two neighbors is a fat-finger slip regardless of geometry),
/// matching Moore & Edelman's definition where the *typed* stray character
/// must be adjacent to an intended one. An inserted character equal to a
/// neighboring intended character is also allowed: double-pressing a key is
/// the canonical fat-finger insertion (`outlook` → `outloook`).
///
/// Returns `None` when `b` cannot be produced from `a` by *any* sequence
/// of fat-finger operations. Note that a non-FF-1 string may still have a
/// finite fat-finger distance greater than one via a chain of allowed
/// operations (e.g. a deletion plus an adjacent insertion); use
/// [`is_ff1`] when testing the single-mistake regime the paper studies.
///
/// ```
/// use ets_core::distance::fat_finger;
/// assert_eq!(fat_finger("outlook", "outlo0k"), Some(1));  // 0 adjacent to o
/// assert_eq!(fat_finger("outlook", "outloook"), Some(1)); // doubled key
/// assert_eq!(fat_finger("gmail", "gmial"), Some(1));      // transposition
/// assert_ne!(fat_finger("verizon", "vexizon"), Some(1));  // x not near r
/// ```
pub fn fat_finger(a: &str, b: &str) -> Option<usize> {
    if a.is_ascii() && b.is_ascii() {
        let d = dl_rows_ff_bytes(a.as_bytes(), b.as_bytes());
        if d > a.len() + b.len() {
            None
        } else {
            Some(d)
        }
    } else {
        fat_finger_legacy(a, b)
    }
}

/// Reference `char`-level implementation of [`fat_finger`] (full DP
/// matrix, per-call adjacency scans). Kept for equivalence tests and the
/// `legacy` sides of the `ets-bench` microbenchmarks.
pub fn fat_finger_legacy(a: &str, b: &str) -> Option<usize> {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let d = dl_matrix_ff(&av, &bv);
    if d > av.len() + bv.len() {
        None
    } else {
        Some(d)
    }
}

/// True when `typo` is at fat-finger distance exactly one from `target`.
pub fn is_ff1(target: &str, typo: &str) -> bool {
    fat_finger(target, typo) == Some(1)
}

/// True when `typo` is at Damerau-Levenshtein distance exactly one from
/// `target`.
pub fn is_dl1(target: &str, typo: &str) -> bool {
    damerau_levenshtein(target, typo) == 1
}

/// Byte-level DL kernel: trims the common prefix/suffix, then runs a
/// three-row DP over what remains. Distance-preserving for the OSA
/// variant (transpositions never span a matched boundary character
/// profitably); the property suite cross-checks this against the full
/// matrix on random inputs.
fn dl_bytes(a: &[u8], b: &[u8]) -> usize {
    let mut lo = 0;
    let (mut ahi, mut bhi) = (a.len(), b.len());
    while lo < ahi && lo < bhi && a[lo] == b[lo] {
        lo += 1;
    }
    while ahi > lo && bhi > lo && a[ahi - 1] == b[bhi - 1] {
        ahi -= 1;
        bhi -= 1;
    }
    let a = &a[lo..ahi];
    let b = &b[lo..bhi];
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut prev2 = vec![0usize; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j] + 1) // deletion
                .min(cur[j - 1] + 1) // insertion
                .min(prev[j - 1] + cost); // substitution / match
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1); // transposition
            }
            cur[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

#[allow(clippy::needless_range_loop)] // DP matrix init reads clearer indexed
fn dl_matrix(a: &[char], b: &[char]) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let w = m + 1;
    let mut d = vec![0usize; (n + 1) * w];
    for i in 0..=n {
        d[i * w] = i;
    }
    for j in 0..=m {
        d[j] = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[(i - 1) * w + j] + 1) // deletion
                .min(d[i * w + j - 1] + 1) // insertion
                .min(d[(i - 1) * w + j - 1] + cost); // substitution / match
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[(i - 2) * w + j - 2] + 1); // transposition
            }
            d[i * w + j] = best;
        }
    }
    d[n * w + m]
}

/// Unreachable-alignment sentinel for the fat-finger DPs.
const INF: usize = usize::MAX / 4;

/// Byte-level fat-finger DL kernel: same recurrence as [`dl_matrix_ff`],
/// but three rolling rows and [`keyboard::ADJACENCY`] lookups instead of
/// per-cell row scans. No affix trimming — insertion legality depends on
/// the neighboring *intended* characters, which trimming would remove.
fn dl_rows_ff_bytes(a: &[u8], b: &[u8]) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == m { 0 } else { INF };
    }
    let mut prev2 = vec![INF; m + 1];
    let mut prev = vec![INF; m + 1];
    let mut cur = vec![INF; m + 1];
    prev[0] = 0;
    for j in 1..=m {
        // Leading insertions: inserted b[j-1] must neighbor (or equal —
        // doubled keypress) the first intended character a[0].
        if (b[j - 1] == a[0] || keyboard::adjacent_bytes(b[j - 1], a[0])) && prev[j - 1] < INF {
            prev[j] = prev[j - 1] + 1;
        }
    }
    for i in 1..=n {
        cur[0] = i; // deletions always allowed
        for j in 1..=m {
            let mut best = INF;
            // deletion of a[i-1]
            if prev[j] < INF {
                best = best.min(prev[j] + 1);
            }
            // insertion of b[j-1]: the stray key must be adjacent to (or a
            // double-press of) an intended character next to the insertion
            // point.
            if cur[j - 1] < INF {
                let near = |x: u8| b[j - 1] == x || keyboard::adjacent_bytes(b[j - 1], x);
                if near(a[i - 1]) || (i < n && near(a[i])) {
                    best = best.min(cur[j - 1] + 1);
                }
            }
            // match / substitution
            if prev[j - 1] < INF {
                if a[i - 1] == b[j - 1] {
                    best = best.min(prev[j - 1]);
                } else if keyboard::adjacent_bytes(a[i - 1], b[j - 1]) {
                    best = best.min(prev[j - 1] + 1);
                }
            }
            // transposition
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] && prev2[j - 2] < INF
            {
                best = best.min(prev2[j - 2] + 1);
            }
            cur[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Fat-finger DL matrix: substitutions require adjacency between the
/// intended and the typed character; insertions require the inserted
/// character to be adjacent to a neighboring intended character.
fn dl_matrix_ff(a: &[char], b: &[char]) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        // Pure insertion of arbitrary characters is not a fat-finger typo
        // unless each inserted character is adjacent to something intended;
        // with an empty reference there is nothing to be adjacent to.
        return if n == m { 0 } else { INF };
    }
    let w = m + 1;
    let mut d = vec![INF; (n + 1) * w];
    d[0] = 0;
    for i in 1..=n {
        d[i * w] = i; // deletions always allowed
    }
    for j in 1..=m {
        // Leading insertions: inserted b[j-1] must neighbor (or equal —
        // doubled keypress) the first intended character a[0].
        if (b[j - 1] == a[0] || keyboard::adjacent(b[j - 1], a[0])) && d[j - 1] < INF {
            d[j] = d[j - 1] + 1;
        }
    }
    for i in 1..=n {
        for j in 1..=m {
            let mut best = INF;
            // deletion of a[i-1]
            if d[(i - 1) * w + j] < INF {
                best = best.min(d[(i - 1) * w + j] + 1);
            }
            // insertion of b[j-1]: the stray key must be adjacent to (or a
            // double-press of) an intended character next to the insertion
            // point.
            if d[i * w + j - 1] < INF {
                let near = |x: char| b[j - 1] == x || keyboard::adjacent(b[j - 1], x);
                if near(a[i - 1]) || (i < n && near(a[i])) {
                    best = best.min(d[i * w + j - 1] + 1);
                }
            }
            // match / substitution
            if d[(i - 1) * w + j - 1] < INF {
                if a[i - 1] == b[j - 1] {
                    best = best.min(d[(i - 1) * w + j - 1]);
                } else if keyboard::adjacent(a[i - 1], b[j - 1]) {
                    best = best.min(d[(i - 1) * w + j - 1] + 1);
                }
            }
            // transposition
            if i > 1
                && j > 1
                && a[i - 1] == b[j - 2]
                && a[i - 2] == b[j - 1]
                && d[(i - 2) * w + j - 2] < INF
            {
                best = best.min(d[(i - 2) * w + j - 2] + 1);
            }
            d[i * w + j] = best;
        }
    }
    d[n * w + m]
}

/// Near-identical glyph pairs (byte form, lowercase).
const NEAR: &[(u8, u8, f64)] = &[
    (b'o', b'0', 0.05),
    (b'l', b'1', 0.05),
    (b'i', b'1', 0.10),
    (b'i', b'l', 0.10),
    (b'i', b'j', 0.25),
    (b'm', b'n', 0.25),
    (b'u', b'v', 0.25),
    (b'v', b'w', 0.30),
    (b'u', b'w', 0.40),
    (b'c', b'e', 0.40),
    (b'e', b'o', 0.45),
    (b'c', b'o', 0.40),
    (b'g', b'q', 0.35),
    (b'b', b'd', 0.45),
    (b'p', b'q', 0.45),
    (b'h', b'n', 0.40),
    (b'f', b't', 0.45),
    (b's', b'5', 0.30),
    (b'b', b'8', 0.35),
    (b'g', b'9', 0.40),
    (b'z', b'2', 0.40),
    (b'a', b'4', 0.50),
    (b't', b'7', 0.50),
    (b'e', b'3', 0.40),
];

/// `const` twin of the confusability scan, used to fill [`CONFUSABILITY`].
const fn confusability_scan(a: u8, b: u8) -> f64 {
    let a = a.to_ascii_lowercase();
    let b = b.to_ascii_lowercase();
    if a == b {
        return 0.0;
    }
    let mut k = 0;
    while k < NEAR.len() {
        let (x, y, v) = NEAR[k];
        if (a == x && b == y) || (a == y && b == x) {
            return v;
        }
        k += 1;
    }
    let digit_a = a.is_ascii_digit();
    let digit_b = b.is_ascii_digit();
    match (digit_a, digit_b) {
        // Letter for letter: moderately visible.
        (false, false) if a != b'-' && b != b'-' => 0.8,
        // Digit for digit.
        (true, true) => 0.7,
        // Letter/digit with no glyph similarity: glaring.
        (true, false) | (false, true) => 0.9,
        // Hyphen involved: a dash in a name is conspicuous but thin.
        _ => 0.6,
    }
}

const fn build_confusability() -> [[f64; 128]; 128] {
    let mut table = [[0.0f64; 128]; 128];
    let mut a = 0;
    while a < 128 {
        let mut b = 0;
        while b < 128 {
            table[a][b] = confusability_scan(a as u8, b as u8);
            b += 1;
        }
        a += 1;
    }
    table
}

/// Precomputed [`char_confusability`] for every pair of ASCII bytes.
/// Entries are the exact literals of the scan version, so lookups are
/// bit-identical to the legacy per-call pair walk. A `static` rather than
/// a `const` so the 128 KiB table is built exactly once, here, instead of
/// at every use site.
#[allow(long_running_const_eval)] // 16k-cell table; finite by construction
pub static CONFUSABILITY: [[f64; 128]; 128] = build_confusability();

/// Visual confusability of substituting `typed` for `intended`, in `[0, 1]`:
/// `0.0` means the substitution is essentially invisible, `1.0` maximally
/// conspicuous.
///
/// The heuristic encodes the paper's observation that letter/digit
/// look-alikes (`o`/`0`, `l`/`1`) are far more likely to go unnoticed than
/// two different letters, and that some letter pairs (`i`/`l`, `m`/`n`,
/// `u`/`v`) are themselves easily confused.
pub fn char_confusability(intended: char, typed: char) -> f64 {
    if intended.is_ascii() && typed.is_ascii() {
        CONFUSABILITY[intended as usize][typed as usize]
    } else {
        char_confusability_legacy(intended, typed)
    }
}

/// Reference scan implementation of [`char_confusability`] (pair-list
/// walk per call). Kept for equivalence tests, benchmarks, and the
/// non-ASCII fallback.
pub fn char_confusability_legacy(intended: char, typed: char) -> f64 {
    let (a, b) = (intended.to_ascii_lowercase(), typed.to_ascii_lowercase());
    if a == b {
        return 0.0;
    }
    if a.is_ascii() && b.is_ascii() {
        for &(x, y, v) in NEAR {
            let (x, y) = (x as char, y as char);
            if (a == x && b == y) || (a == y && b == x) {
                return v;
            }
        }
    }
    let digit_a = a.is_ascii_digit();
    let digit_b = b.is_ascii_digit();
    match (digit_a, digit_b) {
        // Letter for letter: moderately visible.
        (false, false) if a != '-' && b != '-' => 0.8,
        // Digit for digit.
        (true, true) => 0.7,
        // Letter/digit with no glyph similarity: glaring.
        (true, false) | (false, true) => 0.9,
        // Hyphen involved: a dash in a name is conspicuous but thin.
        _ => 0.6,
    }
}

/// `const` twin of [`glyph_prominence`], used to fill [`GLYPH`].
const fn glyph_scan(c: u8) -> f64 {
    match c {
        b'i' | b'l' | b'1' | b'j' | b'.' | b'-' => 0.35,
        b't' | b'f' | b'r' => 0.55,
        b'm' | b'w' => 0.9,
        _ => 0.7,
    }
}

const fn build_glyph() -> [f64; 128] {
    let mut table = [0.0f64; 128];
    let mut c = 0;
    while c < 128 {
        table[c] = glyph_scan(c as u8);
        c += 1;
    }
    table
}

/// Precomputed glyph prominence per ASCII byte (how much visual weight a
/// character carries when inserted or deleted).
pub const GLYPH: [f64; 128] = build_glyph();

/// Visual distance between a target name and a candidate typo.
///
/// Aligns the two strings with a DL trace and sums per-operation visual
/// weights: substitutions use [`char_confusability`]; transpositions of two
/// characters are mildly visible (0.3); a deletion is weighted by how much
/// the string shrinks visually (thin glyphs like `i`, `l` barely register);
/// an addition weighs like the inserted glyph's prominence. The result is
/// *not* normalized; the Section-6 regression normalizes by target length.
///
/// ```
/// use ets_core::distance::visual;
/// // outlo0k looks much closer to outlook than outmook does
/// assert!(visual("outlook", "outlo0k") < visual("outlook", "outmook"));
/// ```
pub fn visual(target: &str, typo: &str) -> f64 {
    if target.is_ascii() && typo.is_ascii() {
        let mut scratch = VisualScratch::default();
        visual_bytes(target.as_bytes(), typo.as_bytes(), &mut scratch)
    } else {
        visual_legacy(target, typo)
    }
}

/// Reference `char`-level implementation of [`visual`] (full DP matrix,
/// scan-based confusability). Kept for equivalence tests and the `legacy`
/// sides of the `ets-bench` microbenchmarks; bit-identical to [`visual`].
pub fn visual_legacy(target: &str, typo: &str) -> f64 {
    let a: Vec<char> = target.chars().collect();
    let b: Vec<char> = typo.chars().collect();
    visual_cost(&a, &b)
}

/// Reusable rolling rows for [`visual_bytes`], so the typo engine scores
/// thousands of candidates without reallocating.
#[derive(Default)]
pub(crate) struct VisualScratch {
    prev2: Vec<f64>,
    prev: Vec<f64>,
    cur: Vec<f64>,
}

/// Byte-level visual DP over three rolling rows. Performs the exact
/// floating-point operations of [`visual_cost`] in the same order, so the
/// result is bit-identical; only the storage differs.
pub(crate) fn visual_bytes(a: &[u8], b: &[u8], s: &mut VisualScratch) -> f64 {
    let (n, m) = (a.len(), b.len());
    let w = m + 1;
    s.prev2.clear();
    s.prev2.resize(w, f64::INFINITY);
    s.prev.clear();
    s.prev.resize(w, f64::INFINITY);
    s.cur.clear();
    s.cur.resize(w, f64::INFINITY);
    s.prev[0] = 0.0;
    for j in 1..=m {
        s.prev[j] = s.prev[j - 1] + GLYPH[b[j - 1] as usize];
    }
    let mut col0 = 0.0;
    for i in 1..=n {
        col0 += GLYPH[a[i - 1] as usize];
        s.cur[0] = col0;
        for j in 1..=m {
            let del = s.prev[j] + GLYPH[a[i - 1] as usize];
            let ins = s.cur[j - 1] + GLYPH[b[j - 1] as usize];
            let sub_cost = if a[i - 1] == b[j - 1] {
                0.0
            } else {
                CONFUSABILITY[a[i - 1] as usize][b[j - 1] as usize]
            };
            let sub = s.prev[j - 1] + sub_cost;
            let mut best = del.min(ins).min(sub);
            if i > 1
                && j > 1
                && a[i - 1] == b[j - 2]
                && a[i - 2] == b[j - 1]
                && a[i - 1] != a[i - 2]
            {
                best = best.min(s.prev2[j - 2] + 0.3);
            }
            s.cur[j] = best;
        }
        std::mem::swap(&mut s.prev2, &mut s.prev);
        std::mem::swap(&mut s.prev, &mut s.cur);
    }
    s.prev[m]
}

fn glyph_prominence(c: char) -> f64 {
    match c {
        'i' | 'l' | '1' | 'j' | '.' | '-' => 0.35,
        't' | 'f' | 'r' => 0.55,
        'm' | 'w' => 0.9,
        _ => 0.7,
    }
}

fn visual_cost(a: &[char], b: &[char]) -> f64 {
    let (n, m) = (a.len(), b.len());
    let w = m + 1;
    let mut d = vec![f64::INFINITY; (n + 1) * w];
    d[0] = 0.0;
    for i in 1..=n {
        d[i * w] = d[(i - 1) * w] + glyph_prominence(a[i - 1]);
    }
    for j in 1..=m {
        d[j] = d[j - 1] + glyph_prominence(b[j - 1]);
    }
    for i in 1..=n {
        for j in 1..=m {
            let del = d[(i - 1) * w + j] + glyph_prominence(a[i - 1]);
            let ins = d[i * w + j - 1] + glyph_prominence(b[j - 1]);
            let sub_cost = if a[i - 1] == b[j - 1] {
                0.0
            } else {
                char_confusability_legacy(a[i - 1], b[j - 1])
            };
            let sub = d[(i - 1) * w + j - 1] + sub_cost;
            let mut best = del.min(ins).min(sub);
            if i > 1
                && j > 1
                && a[i - 1] == b[j - 2]
                && a[i - 2] == b[j - 1]
                && a[i - 1] != a[i - 2]
            {
                best = best.min(d[(i - 2) * w + j - 2] + 0.3);
            }
            d[i * w + j] = best;
        }
    }
    d[n * w + m]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dl_identity() {
        assert_eq!(damerau_levenshtein("gmail", "gmail"), 0);
        assert_eq!(damerau_levenshtein("", ""), 0);
    }

    #[test]
    fn dl_empty() {
        assert_eq!(damerau_levenshtein("", "abc"), 3);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
    }

    #[test]
    fn dl_single_ops() {
        assert_eq!(damerau_levenshtein("hotmail", "hotmial"), 1); // transposition
        assert_eq!(damerau_levenshtein("hotmail", "hotmal"), 1); // deletion
        assert_eq!(damerau_levenshtein("hotmail", "hotmaill"), 1); // addition
        assert_eq!(damerau_levenshtein("hotmail", "hovmail"), 1); // substitution
    }

    #[test]
    fn dl_counts_multiple_ops() {
        assert_eq!(damerau_levenshtein("gmail", "gmx"), 3);
        assert_eq!(damerau_levenshtein("verizon", "horizon"), 2);
    }

    #[test]
    fn dl_transposition_not_two_substitutions() {
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("abcd", "acbd"), 1);
    }

    #[test]
    fn dl_fast_matches_legacy_on_affix_cases() {
        // Cases where trimming interacts with transpositions.
        let pairs = [
            ("aab", "aba"),
            ("aba", "aab"),
            ("baa", "aba"),
            ("abab", "baba"),
            ("xxabyy", "xxbayy"),
            ("aaaa", "aaa"),
            ("abcde", "abcde"),
            ("ab", "ba"),
            ("a", ""),
        ];
        for (a, b) in pairs {
            assert_eq!(
                damerau_levenshtein(a, b),
                damerau_levenshtein_legacy(a, b),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn ff_implies_dl() {
        // Every FF-1 pair must be DL-1 (the paper states this implication).
        let pairs = [
            ("outlook", "outlo0k"),
            ("outlook", "ohtlook"),
            ("outlook", "outloook"),
            ("hotmail", "ho6mail"),
            ("verizon", "ve5izon"),
        ];
        for (t, typo) in pairs {
            assert_eq!(fat_finger(t, typo), Some(1), "{t} -> {typo}");
            assert_eq!(damerau_levenshtein(t, typo), 1, "{t} -> {typo}");
        }
    }

    #[test]
    fn ff_rejects_distant_keys() {
        assert_ne!(fat_finger("verizon", "vexizon"), Some(1)); // r vs x
        assert_eq!(fat_finger("gmail", "gmqil"), Some(1)); // a vs q adjacent
        assert_eq!(fat_finger("gmail", "gmzil"), Some(1)); // a vs z adjacent
        assert_ne!(fat_finger("gmail", "gmpil"), Some(1)); // a vs p distant
    }

    #[test]
    fn ff_deletion_always_allowed() {
        assert_eq!(fat_finger("yopmail", "yopail"), Some(1));
        assert_eq!(fat_finger("zohomail", "zohomil"), Some(1));
    }

    #[test]
    fn ff_transposition_always_allowed() {
        assert_eq!(fat_finger("zohomail", "zohomial"), Some(1));
    }

    #[test]
    fn ff_insertion_needs_adjacency() {
        // k is adjacent to both i and l, so inserting it between them is FF-1.
        assert_eq!(fat_finger("gmail", "gmaikl"), Some(1));
        // Inserting x between a and i: x neighbors z,c,s,d — none of a/i/l,
        // so the single-insertion route is forbidden and the cheapest
        // fat-finger route needs several operations.
        assert!(fat_finger("gmail", "gmaxil").is_none_or(|d| d > 1));
        // gmaiql (a domain the paper registered) is DL-1 but NOT FF-1:
        // q neighbors neither i nor l.
        assert_eq!(damerau_levenshtein("gmail", "gmaiql"), 1);
        assert!(!is_ff1("gmail", "gmaiql"));
    }

    #[test]
    fn ff_double_press_insertion() {
        assert_eq!(fat_finger("outlook", "outloook"), Some(1));
        assert_eq!(fat_finger("gmail", "ggmail"), Some(1));
        assert_eq!(fat_finger("gmail", "gmaill"), Some(1));
    }

    #[test]
    fn ff_identity_is_zero() {
        assert_eq!(fat_finger("comcast", "comcast"), Some(0));
    }

    #[test]
    fn ff_fast_matches_legacy() {
        let pairs = [
            ("outlook", "outlo0k"),
            ("outlook", "xoutlook"),
            ("gmail", "gmaxil"),
            ("gmail", "gmaiql"),
            ("verizon", "vexizon"),
            ("", "a"),
            ("a", ""),
            ("ab", "ba"),
        ];
        for (a, b) in pairs {
            assert_eq!(fat_finger(a, b), fat_finger_legacy(a, b), "{a} vs {b}");
        }
    }

    #[test]
    fn visual_lookalikes_are_cheap() {
        assert!(visual("outlook", "outlo0k") < 0.2);
        assert!(visual("paypal", "paypa1") < 0.2);
    }

    #[test]
    fn visual_orders_paper_examples() {
        // §4.4.2: for a target, low-visual-distance FF-1 typos win.
        assert!(visual("outlook", "outlo0k") < visual("outlook", "outmook"));
        assert!(visual("verizon", "evrizon") < visual("verizon", "vebizon") + 0.5);
        assert!(visual("gmail", "gmial") < visual("gmail", "qmail"));
    }

    #[test]
    fn visual_zero_iff_equal() {
        assert_eq!(visual("gmail", "gmail"), 0.0);
        assert!(visual("gmail", "gmial") > 0.0);
    }

    #[test]
    fn visual_deletion_weights_glyph() {
        // Deleting thin 'i' is less visible than deleting wide 'm'.
        assert!(visual("gmail", "gmal") < visual("gmail", "gail"));
    }

    #[test]
    fn visual_fast_matches_legacy_bitwise() {
        let pairs = [
            ("outlook", "outlo0k"),
            ("outlook", "outmook"),
            ("gmail", "gmial"),
            ("gmail", ""),
            ("", "gmail"),
            ("paypal", "paypa1"),
            ("verizon", "evrizon"),
        ];
        for (a, b) in pairs {
            assert_eq!(
                visual(a, b).to_bits(),
                visual_legacy(a, b).to_bits(),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn confusability_table_matches_scan() {
        for a in 0u8..128 {
            for b in 0u8..128 {
                assert_eq!(
                    CONFUSABILITY[a as usize][b as usize].to_bits(),
                    char_confusability_legacy(a as char, b as char).to_bits(),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn confusability_symmetric() {
        for a in crate::keyboard::alphabet() {
            for b in crate::keyboard::alphabet() {
                assert_eq!(
                    char_confusability(a, b),
                    char_confusability(b, a),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn confusability_bounds() {
        for a in crate::keyboard::alphabet() {
            for b in crate::keyboard::alphabet() {
                let v = char_confusability(a, b);
                assert!((0.0..=1.0).contains(&v));
                if a == b {
                    assert_eq!(v, 0.0);
                } else {
                    assert!(v > 0.0);
                }
            }
        }
    }
}
