//! QWERTY keyboard geometry.
//!
//! The fat-finger distance (Moore & Edelman) restricts edit operations to
//! characters *adjacent on a QWERTY keyboard*; the typing-error model uses
//! the same adjacency to weight substitution and addition mistakes. Domain
//! names may contain `[a-z0-9-]`, so the model covers the digit row, the
//! letter rows, and the hyphen key.
//!
//! Adjacency is answered from a 128×128 lookup table ([`ADJACENCY`])
//! built at compile time from the row geometry, so the hot paths (the
//! typo engine, the distance kernels, `defense.rs`) pay a single indexed
//! load per query instead of scanning the rows. The table is checked for
//! symmetry inside its const builder (a stagger bug fails the build) and
//! again by a `debug_assert!` on the byte-level accessor.

/// Row/column coordinates of a key on a QWERTY layout.
///
/// Rows are numbered top (digit row) to bottom; columns follow the physical
/// stagger: each row is offset roughly half a key right of the row above,
/// which the adjacency predicate accounts for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyPos {
    /// Row index: 0 = digit row, 1 = qwerty row, 2 = home row, 3 = bottom.
    pub row: u8,
    /// Column index within the row, starting at 0.
    pub col: u8,
}

const ROWS: [&str; 4] = ["1234567890-", "qwertyuiop", "asdfghjkl", "zxcvbnm"];

/// Byte view of [`ROWS`] for the `const` table builder.
const ROW_BYTES: [&[u8]; 4] = [b"1234567890-", b"qwertyuiop", b"asdfghjkl", b"zxcvbnm"];

/// The domain-label alphabet as bytes, in the generator's stable order:
/// `a..z`, `0..9`, `-`. Byte-level twin of [`alphabet`].
pub const ALPHABET: [u8; 37] = *b"abcdefghijklmnopqrstuvwxyz0123456789-";

/// `const` scan of the row geometry (compile-time only; runtime queries go
/// through [`ADJACENCY`]).
const fn key_pos_scan(c: u8) -> Option<(u8, u8)> {
    let c = c.to_ascii_lowercase();
    let mut r = 0;
    while r < ROW_BYTES.len() {
        let row = ROW_BYTES[r];
        let mut col = 0;
        while col < row.len() {
            if row[col] == c {
                return Some((r as u8, col as u8));
            }
            col += 1;
        }
        r += 1;
    }
    None
}

/// `const` twin of [`adjacent`], used to fill [`ADJACENCY`].
const fn adjacent_scan(a: u8, b: u8) -> bool {
    let (pa, pb) = match (key_pos_scan(a), key_pos_scan(b)) {
        (Some(pa), Some(pb)) => (pa, pb),
        _ => return false,
    };
    if pa.0 == pb.0 {
        return pa.1.abs_diff(pb.1) == 1;
    }
    if pa.0.abs_diff(pb.0) != 1 {
        return false;
    }
    // Order so `upper` is the higher row (smaller index).
    let (upper, lower) = if pa.0 < pb.0 { (pa, pb) } else { (pb, pa) };
    // Lower-row key at column c sits between upper-row columns c and c+1.
    lower.1 == upper.1 || lower.1 + 1 == upper.1
}

const fn build_adjacency() -> [[bool; 128]; 128] {
    let mut table = [[false; 128]; 128];
    let mut a = 0;
    while a < 128 {
        let mut b = 0;
        while b < 128 {
            table[a][b] = adjacent_scan(a as u8, b as u8);
            b += 1;
        }
        a += 1;
    }
    // Compile-time check: physical adjacency must be symmetric. A stagger
    // bug in `adjacent_scan` would fail the build here rather than skew
    // the typo model silently.
    let mut a = 0;
    while a < 128 {
        let mut b = 0;
        while b < 128 {
            assert!(
                table[a][b] == table[b][a],
                "keyboard adjacency must be symmetric"
            );
            b += 1;
        }
        a += 1;
    }
    table
}

/// Precomputed QWERTY adjacency for every pair of ASCII bytes (uppercase
/// letters fold to lowercase; non-keyboard bytes are never adjacent).
///
/// Shared by the typo engine, the fat-finger distance, and the defense
/// toolkit — index as `ADJACENCY[a as usize][b as usize]`. A `static`
/// rather than a `const` so the 16 KiB table is built (and its symmetry
/// assertion evaluated) exactly once, here, instead of at every use site.
#[allow(long_running_const_eval)] // 16k-cell table; finite by construction
pub static ADJACENCY: [[bool; 128]; 128] = build_adjacency();

/// Returns the position of `c` on the QWERTY layout, or `None` for
/// characters that do not appear in domain names.
pub fn key_pos(c: char) -> Option<KeyPos> {
    let c = c.to_ascii_lowercase();
    for (r, row) in ROWS.iter().enumerate() {
        if let Some(col) = row.find(c) {
            return Some(KeyPos {
                row: r as u8,
                col: col as u8,
            });
        }
    }
    None
}

/// Whether two characters sit on physically adjacent QWERTY keys.
///
/// Two keys are adjacent when they are neighbors in the same row, or in
/// neighboring rows with columns offset by at most one after accounting for
/// the stagger (row `r+1` is shifted ~half a key right of row `r`, so key
/// `(r+1, c)` touches `(r, c)` and `(r, c+1)`).
///
/// ```
/// use ets_core::keyboard::adjacent;
/// assert!(adjacent('g', 'h'));   // same row
/// assert!(adjacent('g', 't'));   // row above
/// assert!(adjacent('g', 'b'));   // row below
/// assert!(!adjacent('g', 'p'));
/// assert!(adjacent('o', '0'));   // digit row neighbors letters
/// ```
pub fn adjacent(a: char, b: char) -> bool {
    if a.is_ascii() && b.is_ascii() {
        adjacent_bytes(a as u8, b as u8)
    } else {
        false
    }
}

/// Byte-level adjacency lookup — the zero-branch fast path used by the
/// typo engine and distance kernels (`ADJACENCY` indexed load).
#[inline]
pub fn adjacent_bytes(a: u8, b: u8) -> bool {
    debug_assert!(
        a >= 128
            || b >= 128
            || ADJACENCY[a as usize][b as usize] == ADJACENCY[b as usize][a as usize],
        "keyboard adjacency must be symmetric"
    );
    a < 128 && b < 128 && ADJACENCY[a as usize][b as usize]
}

/// All keys adjacent to `c`, in layout order.
///
/// Used by the typo generator to enumerate fat-finger substitutions and
/// additions, and by the typing model to weight mistake probabilities.
pub fn neighbors(c: char) -> Vec<char> {
    let mut out = Vec::new();
    for row in ROWS {
        for cand in row.chars() {
            if cand != c.to_ascii_lowercase() && adjacent(c, cand) {
                out.push(cand);
            }
        }
    }
    out
}

/// Whether a character may appear inside a domain label.
pub fn domain_char(c: char) -> bool {
    c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'
}

/// The full domain-label alphabet in a stable order: `a..z`, `0..9`, `-`.
pub fn alphabet() -> impl Iterator<Item = char> {
    ('a'..='z').chain('0'..='9').chain(std::iter::once('-'))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: the pre-table row scan.
    fn adjacent_legacy(a: char, b: char) -> bool {
        let (Some(pa), Some(pb)) = (key_pos(a), key_pos(b)) else {
            return false;
        };
        if pa.row == pb.row {
            return pa.col.abs_diff(pb.col) == 1;
        }
        if pa.row.abs_diff(pb.row) != 1 {
            return false;
        }
        let (upper, lower) = if pa.row < pb.row { (pa, pb) } else { (pb, pa) };
        lower.col == upper.col || lower.col + 1 == upper.col
    }

    #[test]
    fn table_matches_row_scan_for_all_ascii() {
        for a in 0u8..128 {
            for b in 0u8..128 {
                assert_eq!(
                    ADJACENCY[a as usize][b as usize],
                    adjacent_legacy(a as char, b as char),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn alphabet_const_matches_iterator() {
        let chars: Vec<char> = alphabet().collect();
        let bytes: Vec<char> = ALPHABET.iter().map(|&b| b as char).collect();
        assert_eq!(chars, bytes);
    }

    #[test]
    fn positions_cover_alphabet() {
        for c in alphabet() {
            assert!(key_pos(c).is_some(), "no position for {c:?}");
        }
        assert!(key_pos('!').is_none());
        assert!(key_pos('.').is_none());
    }

    #[test]
    fn same_row_adjacency() {
        assert!(adjacent('a', 's'));
        assert!(adjacent('s', 'a'));
        assert!(!adjacent('a', 'd'));
        assert!(!adjacent('a', 'a'));
    }

    #[test]
    fn cross_row_adjacency() {
        // home row g: neighbors f,h (row), t,y (above), v,b (below)
        let n = neighbors('g');
        for c in ['f', 'h', 't', 'y', 'v', 'b'] {
            assert!(n.contains(&c), "g should neighbor {c}, got {n:?}");
        }
        assert_eq!(n.len(), 6);
    }

    #[test]
    fn digit_row_touches_letters() {
        assert!(adjacent('q', '1'));
        assert!(adjacent('q', '2'));
        assert!(adjacent('0', 'o'));
        assert!(adjacent('0', 'p'));
        // The paper registered o7tlook.com and ho6mail.com: 7/u and 6/t are
        // fat-finger confusions.
        assert!(adjacent('u', '7'));
        assert!(adjacent('t', '6'));
        // and outlo0k.com: 0/o
        assert!(adjacent('o', '0'));
    }

    #[test]
    fn hyphen_neighbors_p_and_zero() {
        let n = neighbors('-');
        assert!(n.contains(&'0'));
        assert!(n.contains(&'p'));
    }

    #[test]
    fn adjacency_is_symmetric() {
        let alpha: Vec<char> = alphabet().collect();
        for &a in &alpha {
            for &b in &alpha {
                assert_eq!(adjacent(a, b), adjacent(b, a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn neighbors_bounded() {
        // No key on this layout has more than 8 in-alphabet neighbors.
        for c in alphabet() {
            let n = neighbors(c).len();
            assert!((2..=8).contains(&n), "{c} has {n} neighbors");
        }
    }
}
