//! QWERTY keyboard geometry.
//!
//! The fat-finger distance (Moore & Edelman) restricts edit operations to
//! characters *adjacent on a QWERTY keyboard*; the typing-error model uses
//! the same adjacency to weight substitution and addition mistakes. Domain
//! names may contain `[a-z0-9-]`, so the model covers the digit row, the
//! letter rows, and the hyphen key.

/// Row/column coordinates of a key on a QWERTY layout.
///
/// Rows are numbered top (digit row) to bottom; columns follow the physical
/// stagger: each row is offset roughly half a key right of the row above,
/// which the adjacency predicate accounts for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyPos {
    /// Row index: 0 = digit row, 1 = qwerty row, 2 = home row, 3 = bottom.
    pub row: u8,
    /// Column index within the row, starting at 0.
    pub col: u8,
}

const ROWS: [&str; 4] = ["1234567890-", "qwertyuiop", "asdfghjkl", "zxcvbnm"];

/// Returns the position of `c` on the QWERTY layout, or `None` for
/// characters that do not appear in domain names.
pub fn key_pos(c: char) -> Option<KeyPos> {
    let c = c.to_ascii_lowercase();
    for (r, row) in ROWS.iter().enumerate() {
        if let Some(col) = row.find(c) {
            return Some(KeyPos {
                row: r as u8,
                col: col as u8,
            });
        }
    }
    None
}

/// Whether two characters sit on physically adjacent QWERTY keys.
///
/// Two keys are adjacent when they are neighbors in the same row, or in
/// neighboring rows with columns offset by at most one after accounting for
/// the stagger (row `r+1` is shifted ~half a key right of row `r`, so key
/// `(r+1, c)` touches `(r, c)` and `(r, c+1)`).
///
/// ```
/// use ets_core::keyboard::adjacent;
/// assert!(adjacent('g', 'h'));   // same row
/// assert!(adjacent('g', 't'));   // row above
/// assert!(adjacent('g', 'b'));   // row below
/// assert!(!adjacent('g', 'p'));
/// assert!(adjacent('o', '0'));   // digit row neighbors letters
/// ```
pub fn adjacent(a: char, b: char) -> bool {
    let (Some(pa), Some(pb)) = (key_pos(a), key_pos(b)) else {
        return false;
    };
    if pa.row == pb.row {
        return pa.col.abs_diff(pb.col) == 1;
    }
    if pa.row.abs_diff(pb.row) != 1 {
        return false;
    }
    // Order so `upper` is the higher row (smaller index).
    let (upper, lower) = if pa.row < pb.row { (pa, pb) } else { (pb, pa) };
    // Lower-row key at column c sits between upper-row columns c and c+1.
    lower.col == upper.col || lower.col + 1 == upper.col
}

/// All keys adjacent to `c`, in layout order.
///
/// Used by the typo generator to enumerate fat-finger substitutions and
/// additions, and by the typing model to weight mistake probabilities.
pub fn neighbors(c: char) -> Vec<char> {
    let mut out = Vec::new();
    for row in ROWS {
        for cand in row.chars() {
            if cand != c.to_ascii_lowercase() && adjacent(c, cand) {
                out.push(cand);
            }
        }
    }
    out
}

/// Whether a character may appear inside a domain label.
pub fn domain_char(c: char) -> bool {
    c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'
}

/// The full domain-label alphabet in a stable order: `a..z`, `0..9`, `-`.
pub fn alphabet() -> impl Iterator<Item = char> {
    ('a'..='z').chain('0'..='9').chain(std::iter::once('-'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_cover_alphabet() {
        for c in alphabet() {
            assert!(key_pos(c).is_some(), "no position for {c:?}");
        }
        assert!(key_pos('!').is_none());
        assert!(key_pos('.').is_none());
    }

    #[test]
    fn same_row_adjacency() {
        assert!(adjacent('a', 's'));
        assert!(adjacent('s', 'a'));
        assert!(!adjacent('a', 'd'));
        assert!(!adjacent('a', 'a'));
    }

    #[test]
    fn cross_row_adjacency() {
        // home row g: neighbors f,h (row), t,y (above), v,b (below)
        let n = neighbors('g');
        for c in ['f', 'h', 't', 'y', 'v', 'b'] {
            assert!(n.contains(&c), "g should neighbor {c}, got {n:?}");
        }
        assert_eq!(n.len(), 6);
    }

    #[test]
    fn digit_row_touches_letters() {
        assert!(adjacent('q', '1'));
        assert!(adjacent('q', '2'));
        assert!(adjacent('0', 'o'));
        assert!(adjacent('0', 'p'));
        // The paper registered o7tlook.com and ho6mail.com: 7/u and 6/t are
        // fat-finger confusions.
        assert!(adjacent('u', '7'));
        assert!(adjacent('t', '6'));
        // and outlo0k.com: 0/o
        assert!(adjacent('o', '0'));
    }

    #[test]
    fn hyphen_neighbors_p_and_zero() {
        let n = neighbors('-');
        assert!(n.contains(&'0'));
        assert!(n.contains(&'p'));
    }

    #[test]
    fn adjacency_is_symmetric() {
        let alpha: Vec<char> = alphabet().collect();
        for &a in &alpha {
            for &b in &alpha {
                assert_eq!(adjacent(a, b), adjacent(b, a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn neighbors_bounded() {
        // No key on this layout has more than 8 in-alphabet neighbors.
        for c in alphabet() {
            let n = neighbors(c).len();
            assert!((2..=8).contains(&n), "{c} has {n} neighbors");
        }
    }
}
