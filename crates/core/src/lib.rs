//! # ets-core
//!
//! Core algorithms of the *Email Typosquatting* (Szurdi & Christin, IMC 2017)
//! reproduction.
//!
//! This crate is substrate-free: it contains the string metrics, typo
//! generators, typing-error model, statistics, and the Section-6 projection
//! regression, with no I/O or simulation state. The simulated Internet
//! (DNS, SMTP, registrant population) lives in the sibling crates and is
//! built on top of these primitives.
//!
//! ## Layout
//!
//! * [`domain`] — validated domain names ([`DomainName`]).
//! * [`intern`] — interned domain table: `u32` symbols over a contiguous
//!   byte arena.
//! * [`keyboard`] — the QWERTY adjacency model used by the fat-finger
//!   distance and the typing-error model (`const` 128×128 table).
//! * [`distance`] — Damerau-Levenshtein, fat-finger and visual distances
//!   (byte-level kernels over `const` lookup tables).
//! * [`typogen`] — DL-1 typo candidate generation ("gtypos"): the
//!   zero-allocation [`typogen::TypoTable`] engine plus DL-1
//!   classification.
//! * [`revindex`] — reverse DL-1 index answering "which targets is this
//!   domain a typo of?" in O(len) (deletion-neighborhood keying).
//! * [`taxonomy`] — gtypo / ctypo / typosquatting classification and the
//!   misdirected-email taxonomy (receiver / reflection / SMTP typos).
//! * [`typing`] — the probabilistic model `E_ij = E_i · Pt_ij · (1 − Pc_ij)`.
//! * [`defense`] — the §8 countermeasures: typo correction and defensive
//!   registration planning.
//! * [`stats`] — descriptive statistics, confidence intervals, MAD outlier
//!   detection, ordinary-least-squares regression with R² and LOOCV, and
//!   precision/recall scoring.
//! * [`regress`] — the paper's Section-6 projection model.
//! * [`alexa`] — Zipf-law popularity lists standing in for Alexa rankings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alexa;
pub mod defense;
pub mod distance;
pub mod domain;
pub mod intern;
pub mod keyboard;
pub mod regress;
pub mod revindex;
pub mod stats;
pub mod taxonomy;
pub mod typing;
pub mod typogen;

pub use domain::DomainName;
pub use intern::{DomainId, DomainInterner};
pub use revindex::ReverseDl1Index;
pub use typogen::{MistakeKind, TypoCandidate, TypoTable};
