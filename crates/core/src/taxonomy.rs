//! The paper's Section-3 taxonomies.
//!
//! * Domain taxonomy (after Szurdi et al. 2014): **gtypos** are lexically
//!   close (DL-1) candidates, **ctypos** are the registered subset, and
//!   **typosquatting domains** are ctypos registered by a different entity
//!   to benefit from the target's traffic.
//! * Misdirected-email taxonomy: **receiver** typos (sender mistyped the
//!   recipient's domain), **reflection** typos (user mistyped their own
//!   address when signing up for a service), and **SMTP** typos (user
//!   mistyped the SMTP server name in their mail client).

use crate::domain::DomainName;
use crate::typogen::TypoCandidate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of a candidate typo domain relative to its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainClass {
    /// Lexically close but unregistered: a generated typo ("gtypo") only.
    Unregistered,
    /// Registered by the target's own organization (defensive registration).
    Defensive,
    /// Registered by a third party that plausibly operates a legitimate,
    /// unrelated site that merely happens to be lexically close.
    BenignCollision,
    /// Registered by a different entity to capture traffic intended for the
    /// target: a true typosquatting domain.
    Typosquatting,
}

impl fmt::Display for DomainClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DomainClass::Unregistered => "unregistered gtypo",
            DomainClass::Defensive => "defensive registration",
            DomainClass::BenignCollision => "benign collision",
            DomainClass::Typosquatting => "typosquatting",
        };
        f.write_str(s)
    }
}

/// Facts about a registration needed to classify a ctypo.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistrationFacts {
    /// Whether the domain is registered at all.
    pub registered: bool,
    /// Whether the registrant is (an agent of) the target's owner.
    pub owned_by_target: bool,
    /// Whether the domain hosts content genuinely unrelated to the target
    /// (a real business that happens to be lexically close).
    pub independent_content: bool,
}

/// Applies the Section-3 definitions: a typosquatting domain is a ctypo
/// (i) registered to benefit from traffic intended for a target and
/// (ii) owned by a different entity.
pub fn classify(facts: &RegistrationFacts) -> DomainClass {
    if !facts.registered {
        DomainClass::Unregistered
    } else if facts.owned_by_target {
        DomainClass::Defensive
    } else if facts.independent_content {
        DomainClass::BenignCollision
    } else {
        DomainClass::Typosquatting
    }
}

/// The three kinds of misdirected email the study measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EmailTypoKind {
    /// The sender mistyped the recipient's domain
    /// (`alice@gmial.com` instead of `alice@gmail.com`).
    Receiver,
    /// The user mistyped their own address when registering for a service;
    /// the service then mails the wrong address.
    Reflection,
    /// The user mistyped the SMTP server name in their mail client; *all*
    /// their outgoing mail is intercepted until fixed.
    Smtp,
}

impl fmt::Display for EmailTypoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EmailTypoKind::Receiver => "receiver",
            EmailTypoKind::Reflection => "reflection",
            EmailTypoKind::Smtp => "smtp",
        };
        f.write_str(s)
    }
}

/// What a registered collection domain is designed to catch, mirroring the
/// paper's registration strategy (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectionPurpose {
    /// Typos of email providers: catches receiver and reflection typos.
    Provider,
    /// Typos of disposable-address providers: expected to skew reflection.
    Disposable,
    /// Typos of ISP SMTP server names: catches SMTP typos.
    SmtpServer,
    /// Typos of sensitive financial domains' SMTP settings.
    Financial,
    /// Typos of bulk email sending services.
    BulkSender,
}

/// A typo domain in the study's registered corpus, with its purpose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyDomain {
    /// The generated candidate (domain, target, mistake metadata).
    pub candidate: TypoCandidate,
    /// What the domain was registered to measure.
    pub purpose: CollectionPurpose,
}

impl StudyDomain {
    /// Which email-typo kinds this domain is *expected* to receive.
    pub fn expected_kinds(&self) -> &'static [EmailTypoKind] {
        match self.purpose {
            CollectionPurpose::Provider | CollectionPurpose::Disposable => {
                &[EmailTypoKind::Receiver, EmailTypoKind::Reflection]
            }
            CollectionPurpose::SmtpServer | CollectionPurpose::Financial => &[EmailTypoKind::Smtp],
            CollectionPurpose::BulkSender => &[EmailTypoKind::Reflection],
        }
    }

    /// Convenience accessor for the typo domain name.
    pub fn domain(&self) -> &DomainName {
        &self.candidate.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typogen::generate_dl1;

    #[test]
    fn classify_matrix() {
        let f = |registered, owned_by_target, independent_content| RegistrationFacts {
            registered,
            owned_by_target,
            independent_content,
        };
        assert_eq!(classify(&f(false, false, false)), DomainClass::Unregistered);
        assert_eq!(classify(&f(true, true, false)), DomainClass::Defensive);
        assert_eq!(
            classify(&f(true, false, true)),
            DomainClass::BenignCollision
        );
        assert_eq!(classify(&f(true, false, false)), DomainClass::Typosquatting);
    }

    #[test]
    fn unregistered_wins_over_other_flags() {
        let facts = RegistrationFacts {
            registered: false,
            owned_by_target: true,
            independent_content: true,
        };
        assert_eq!(classify(&facts), DomainClass::Unregistered);
    }

    #[test]
    fn expected_kinds_by_purpose() {
        let target: DomainName = "gmail.com".parse().unwrap();
        let cand = generate_dl1(&target).into_iter().next().unwrap();
        let mk = |purpose| StudyDomain {
            candidate: cand.clone(),
            purpose,
        };
        assert!(mk(CollectionPurpose::Provider)
            .expected_kinds()
            .contains(&EmailTypoKind::Receiver));
        assert_eq!(
            mk(CollectionPurpose::SmtpServer).expected_kinds(),
            &[EmailTypoKind::Smtp]
        );
        assert_eq!(
            mk(CollectionPurpose::BulkSender).expected_kinds(),
            &[EmailTypoKind::Reflection]
        );
    }

    #[test]
    fn display_strings() {
        assert_eq!(EmailTypoKind::Receiver.to_string(), "receiver");
        assert_eq!(EmailTypoKind::Smtp.to_string(), "smtp");
        assert_eq!(DomainClass::Typosquatting.to_string(), "typosquatting");
    }
}
