//! Popularity lists standing in for Alexa rankings.
//!
//! The study uses Alexa in three ways: to pick target domains (top of the
//! email category), to estimate per-domain email volume (monthly unique
//! visitors, hypothesis H3/§6.1), and to estimate the *relative* traffic of
//! already-registered typo domains (Figure 9). This module models a ranked
//! list whose traffic follows a Zipf law — the canonical fit for web
//! popularity — with a deterministic rank → traffic mapping so every
//! experiment is reproducible.

use crate::domain::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One entry of a popularity list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedDomain {
    /// The domain.
    pub domain: DomainName,
    /// 1-based rank (1 = most popular).
    pub rank: usize,
    /// Estimated monthly unique visitors.
    pub monthly_visitors: f64,
}

/// A ranked popularity list with Zipf-distributed traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopularityList {
    entries: Vec<RankedDomain>,
    #[serde(skip)]
    index: HashMap<DomainName, usize>,
    /// Zipf exponent used to derive traffic from rank.
    pub exponent: f64,
    /// Traffic of rank 1.
    pub top_traffic: f64,
}

impl PopularityList {
    /// Builds a list from domains in rank order, assigning Zipf traffic
    /// `top_traffic / rank^exponent`.
    ///
    /// The conventional exponent for web traffic is close to 1; the default
    /// constructors use 0.9 so the tail is slightly fatter, matching the
    /// long tail of typosquatting targets the paper observes.
    pub fn from_ranked(domains: Vec<DomainName>, top_traffic: f64, exponent: f64) -> Self {
        let entries: Vec<RankedDomain> = domains
            .into_iter()
            .enumerate()
            .map(|(i, domain)| RankedDomain {
                domain,
                rank: i + 1,
                monthly_visitors: top_traffic / ((i + 1) as f64).powf(exponent),
            })
            .collect();
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.domain.clone(), i))
            .collect();
        PopularityList {
            entries,
            index,
            exponent,
            top_traffic,
        }
    }

    /// The number of listed domains.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in rank order.
    pub fn iter(&self) -> impl Iterator<Item = &RankedDomain> {
        self.entries.iter()
    }

    /// The top `n` entries.
    pub fn top(&self, n: usize) -> &[RankedDomain] {
        &self.entries[..n.min(self.entries.len())]
    }

    /// Looks a domain up by name.
    pub fn get(&self, domain: &DomainName) -> Option<&RankedDomain> {
        self.index.get(domain).map(|&i| &self.entries[i])
    }

    /// Rank of a domain, if listed.
    pub fn rank_of(&self, domain: &DomainName) -> Option<usize> {
        self.get(domain).map(|e| e.rank)
    }

    /// Monthly visitors of a domain, if listed.
    pub fn traffic_of(&self, domain: &DomainName) -> Option<f64> {
        self.get(domain).map(|e| e.monthly_visitors)
    }

    /// Estimated *yearly email volume* of a listed domain, under hypothesis
    /// H3 (email volume proportional to active users): each monthly unique
    /// visitor of a webmail domain is assumed to receive `emails_per_visitor`
    /// emails per month.
    pub fn yearly_email_volume(&self, domain: &DomainName, emails_per_visitor: f64) -> Option<f64> {
        self.traffic_of(domain)
            .map(|t| t * emails_per_visitor * 12.0)
    }

    /// Restores the name index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.domain.clone(), i))
            .collect();
    }
}

/// The study's top email providers and ISPs (§4.2.1), in a plausible
/// email-category popularity order. These anchor every simulated list.
pub fn study_targets() -> Vec<DomainName> {
    [
        "gmail.com",
        "hotmail.com",
        "outlook.com",
        "yahoo.com",
        "aol.com",
        "comcast.net",
        "verizon.net",
        "mail.com",
        "icloud.com",
        "zohomail.com",
        "gmx.com",
        "mailchimp.com",
        "att.net",
        "cox.net",
        "twc.com",
        "rediffmail.com",
        "hushmail.com",
        "yopmail.com",
        "10minutemail.com",
        "sendgrid.com",
        "paypal.com",
        "chase.com",
    ]
    .iter()
    .map(|s| s.parse().expect("static names are valid"))
    .collect()
}

/// Builds a synthetic "top N" list: the study targets first, padded with
/// generated filler domains (`site<k>.com`), Zipf traffic attached.
pub fn synthetic_top(n: usize) -> PopularityList {
    let mut domains = study_targets();
    domains.truncate(n);
    let mut k = 0usize;
    while domains.len() < n {
        let name = format!("site{k}.com");
        domains.push(name.parse().expect("generated names are valid"));
        k += 1;
    }
    PopularityList::from_ranked(domains, 5.0e8, 0.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_traffic_is_monotone() {
        let list = synthetic_top(100);
        let traffics: Vec<f64> = list.iter().map(|e| e.monthly_visitors).collect();
        for w in traffics.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(list.top(1)[0].monthly_visitors, 5.0e8);
    }

    #[test]
    fn lookup_by_name() {
        let list = synthetic_top(50);
        let gmail: DomainName = "gmail.com".parse().unwrap();
        assert_eq!(list.rank_of(&gmail), Some(1));
        assert!(list.traffic_of(&gmail).unwrap() > 0.0);
        let missing: DomainName = "nonexistent.example".parse().unwrap();
        assert_eq!(list.rank_of(&missing), None);
    }

    #[test]
    fn top_slice_bounds() {
        let list = synthetic_top(10);
        assert_eq!(list.top(3).len(), 3);
        assert_eq!(list.top(100).len(), 10);
    }

    #[test]
    fn study_targets_are_ranked_first() {
        let list = synthetic_top(1000);
        let targets = study_targets();
        for (i, t) in targets.iter().enumerate() {
            assert_eq!(list.rank_of(t), Some(i + 1));
        }
        assert_eq!(list.len(), 1000);
    }

    #[test]
    fn email_volume_scales_with_traffic() {
        let list = synthetic_top(50);
        let gmail: DomainName = "gmail.com".parse().unwrap();
        let yahoo: DomainName = "yahoo.com".parse().unwrap();
        let vg = list.yearly_email_volume(&gmail, 30.0).unwrap();
        let vy = list.yearly_email_volume(&yahoo, 30.0).unwrap();
        assert!(vg > vy);
        // 12 months × 30 emails/visitor
        assert!((vg - list.traffic_of(&gmail).unwrap() * 360.0).abs() < 1.0);
    }

    #[test]
    fn zipf_exponent_respected() {
        let list = synthetic_top(100);
        let t1 = list.top(1)[0].monthly_visitors;
        let t10 = list.iter().nth(9).unwrap().monthly_visitors;
        let ratio = t1 / t10;
        assert!((ratio - 10f64.powf(0.9)).abs() < 1e-6);
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let list = synthetic_top(20);
        let json = serde_json::to_string(&list).unwrap();
        let mut back: PopularityList = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        let gmail: DomainName = "gmail.com".parse().unwrap();
        assert_eq!(back.rank_of(&gmail), Some(1));
    }
}
