//! Quickstart: generate the typo candidates of a target domain and rank
//! them by expected captured email, the way a (hypothetical) typosquatter
//! would choose what to register.
//!
//! ```sh
//! cargo run --example quickstart [target-domain]
//! ```

use ets_core::distance;
use ets_core::typing::TypingModel;
use ets_core::typogen;
use ets_core::DomainName;

fn main() {
    let raw = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "gmail.com".to_owned());
    let target: DomainName = match raw.parse() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {raw:?} is not a valid domain name: {e}");
            std::process::exit(2);
        }
    };

    let candidates = typogen::generate_dl1(&target);
    println!(
        "{} has {} DL-1 typo candidates ({} of them fat-finger)",
        target,
        candidates.len(),
        candidates.iter().filter(|c| c.fat_finger).count()
    );

    // Rank by the Section-6 typing-error model, assuming 1B emails/year
    // to the target.
    let model = TypingModel::default();
    let mut ranked: Vec<_> = candidates
        .iter()
        .map(|c| (model.expected_emails(1e9, c), c))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN"));

    println!("\ntop 15 candidates by expected captured email (per 1B sent):");
    println!(
        "{:<22} {:>12} {:<14} {:>4} {:>7} {:>7}",
        "domain", "emails/yr", "mistake", "pos", "FF-1", "visual"
    );
    for (expected, c) in ranked.iter().take(15) {
        println!(
            "{:<22} {:>12.0} {:<14} {:>4} {:>7} {:>7.2}",
            c.domain.as_str(),
            expected,
            c.kind.to_string(),
            c.position,
            if c.fat_finger { "yes" } else { "no" },
            c.visual
        );
    }

    // Show the distance metrics on the best candidate.
    let best = ranked[0].1;
    println!(
        "\nbest candidate {}: DL={} FF={:?} visual={:.2}",
        best.domain,
        distance::damerau_levenshtein(target.sld(), best.domain.sld()),
        distance::fat_finger(target.sld(), best.domain.sld()),
        distance::visual(target.sld(), best.domain.sld()),
    );
}
