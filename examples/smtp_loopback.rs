//! A real TCP catch-all SMTP server on loopback, receiving a mistyped
//! email and pushing it through the processing pipeline — the collection
//! path of Figure 1 over actual sockets.
//!
//! ```sh
//! cargo run --example smtp_loopback
//! ```

use ets_collector::crypto;
use ets_collector::scrub;
use ets_mail::MessageBuilder;
use ets_smtp::client::Email;
use ets_smtp::net_client::send_email;
use ets_smtp::server::SmtpServer;
use ets_smtp::session::ServerPolicy;
use std::time::Duration;

fn main() {
    // 1. The collection server: a catch-all for the typo domain.
    let policy = ServerPolicy::catch_all("mx.gmial.com", &["gmial.com".to_owned()]);
    let server = SmtpServer::bind("127.0.0.1:0", policy).expect("bind loopback");
    println!("catch-all SMTP server listening on {}", server.addr());

    // 2. A sender who meant to write to alice@gmail.com.
    let msg = MessageBuilder::new()
        .from("john.lavorato@business.example")
        .expect("valid")
        .to("alice@gmial.com") // the typo
        .expect("valid")
        .subject("hotel booking")
        .date("Mon, 6 Jun 2016 09:00:00 +0000")
        .message_id("<booking-123@business.example>")
        .body("Amex 371385129301004 Exp 06/03\nBook us 3 rooms and make sure that we can have 2 beds in one of the rooms.\nThanks\nJohn")
        .build();
    let email = Email::new(
        Some("john.lavorato@business.example".parse().expect("valid")),
        vec!["alice@gmial.com".parse().expect("valid")],
        msg.to_wire(),
    );
    let outcome = send_email(
        &server.addr().to_string(),
        email,
        "mail-out.business.example",
        true, // opportunistic STARTTLS
        Duration::from_secs(5),
    )
    .expect("loopback delivery");
    println!("client outcome: {outcome:?}");

    // 3. Collect and process, exactly like the pipeline of Figure 2.
    let received = server.shutdown();
    assert_eq!(received.len(), 1, "one message must arrive");
    let raw = &received[0];
    println!(
        "received via {} (TLS: {}): envelope {} -> {}",
        raw.client_helo,
        raw.tls,
        raw.mail_from
            .as_ref()
            .map(ToString::to_string)
            .unwrap_or_else(|| "<>".into()),
        raw.rcpt_to[0]
    );
    let parsed = ets_mail::Message::parse(&raw.data).expect("parseable message");

    // Scrub sensitive information before storage.
    let scrubbed = scrub::scrub(&parsed.body);
    println!("\nsanitized body:\n---\n{}\n---", scrubbed.text);
    println!("sensitive information removed: {:?}", scrubbed.kinds());

    // Encrypt at rest.
    let key: crypto::Key = [0x42; 32];
    let sealed = crypto::seal(&key, 1, scrubbed.text.as_bytes());
    println!(
        "stored {} ciphertext bytes (nonce {:02x?}...)",
        sealed.ciphertext.len(),
        &sealed.nonce[..4]
    );
    let back = crypto::open(&key, &sealed).expect("round trip");
    assert_eq!(back, scrubbed.text.as_bytes());
    println!("decryption with the offline key verified");
}
