//! The Section-5 experiment end to end: build the synthetic Internet,
//! scan every registered typo candidate for SMTP support, cluster
//! registrants by WHOIS, and measure mail-server concentration.
//!
//! ```sh
//! cargo run --release --example ecosystem_scan
//! ```

use ets_dns::Fqdn;
use ets_ecosystem::mxconc::MxConcentration;
use ets_ecosystem::nameserver::NsAnalysis;
use ets_ecosystem::population::{PopulationConfig, World};
use ets_ecosystem::scan::scan_world;
use ets_ecosystem::whois_cluster::{self, WhoisRow};
use std::collections::HashSet;

fn main() {
    // A mid-sized world keeps this example under a minute.
    let world = World::build(PopulationConfig {
        n_targets: 300,
        ..PopulationConfig::default()
    });
    println!(
        "world: {} targets, {} registered typo candidates, {} registrants",
        world.targets.len(),
        world.ctypos.len(),
        world.registrants.len()
    );

    // --- Table 4: SMTP support census ---------------------------------
    let census = scan_world(&world);
    println!("\nSMTP support (Table 4):");
    for (label, count, pct, pct_analyzed) in census.rows() {
        println!("  {label:<28} {count:>6}  {pct:>5.1}%  ({pct_analyzed}% of analyzed)");
    }

    // --- WHOIS clustering (Figure 8, registrants) -----------------------
    let rows: Vec<WhoisRow> = world
        .ctypos
        .iter()
        .map(|c| {
            let fq = Fqdn::from_domain(&c.candidate.domain);
            let reg = world.registry.registration(&fq).expect("registered");
            WhoisRow {
                domain: fq,
                whois: reg.public_whois(),
                private: reg.is_private(),
            }
        })
        .collect();
    let clusters = whois_cluster::cluster_registrants(&rows);
    let majority = whois_cluster::registrant_fraction_owning(&clusters, 0.5);
    println!(
        "\nWHOIS clustering: {} clusters; largest owns {} domains; {:.1}% of registrants own the majority (paper: 2.3%)",
        clusters.len(),
        clusters.first().map(|c| c.len()).unwrap_or(0),
        majority * 100.0
    );

    // --- MX concentration (Figure 8 / Table 6 shape) ---------------------
    let resolver = world.resolver();
    let domains: Vec<Fqdn> = world
        .ctypos
        .iter()
        .map(|c| Fqdn::from_domain(&c.candidate.domain))
        .collect();
    let conc = MxConcentration::measure(&resolver, domains.iter());
    println!(
        "\nmail-server concentration over {} mail-capable ctypos:",
        conc.total_with_mail
    );
    for (mx, count) in conc.providers.iter().take(8) {
        println!("  {mx:<22} {count:>6}");
    }
    println!(
        "  top-11 share: {:.1}% (paper: >33%); providers for majority: {} (paper: 51)",
        conc.top_share(11) * 100.0,
        conc.providers_for_share(0.5)
    );

    // --- suspicious name servers ------------------------------------------
    let ctypo_set: HashSet<Fqdn> = domains.into_iter().collect();
    let ns = NsAnalysis::run_with_background(
        &world.registry.zone_file(),
        &ctypo_set,
        &world.ns_customer_base,
        10,
    );
    println!(
        "\nname servers: average typo ratio {:.1}% (paper ≈4%); suspicious (>5× average):",
        ns.average_ratio * 100.0
    );
    for s in ns.suspicious(5.0).iter().take(5) {
        println!(
            "  {:<28} {:>5.1}% of {} domains",
            s.nameserver.to_string(),
            s.typo_ratio() * 100.0,
            s.total_count
        );
    }
}
