//! The Section-4 experiment end to end: register the 76 study domains,
//! simulate seven months of incoming email, push everything through the
//! five-layer funnel, and print the yearly projections.
//!
//! ```sh
//! cargo run --release --example typosquatter_study
//! ```

use ets_collector::analysis::StudyAnalysis;
use ets_collector::funnel::{Funnel, FunnelVerdict};
use ets_collector::infra::CollectionInfra;
use ets_collector::traffic::{TrafficConfig, TrafficGenerator};

fn main() {
    // 1. Stand up the collection infrastructure (Figure 1 / Table 1).
    let infra = CollectionInfra::build();
    println!(
        "registered {} typo domains ({} receiver-typo, {} SMTP-typo), one VPS each",
        infra.domains.len(),
        infra.receiver_domains().count(),
        infra.smtp_domains().count()
    );

    // 2. Generate the study period's traffic. Spam is generated at 1/5000
    //    of the paper's volume to keep this example snappy; the analysis
    //    scales it back.
    let config = TrafficConfig {
        spam_scale: 1.0 / 5_000.0,
        ..TrafficConfig::default()
    };
    let spam_scale = config.spam_scale;
    let emails: Vec<_> = TrafficGenerator::new(&infra, config)
        .generate()
        .into_iter()
        .map(|e| e.collected)
        .collect();
    println!("collected {} emails over the study period", emails.len());

    // 3. Run the funnel.
    let verdicts = Funnel::new(&infra).classify_all(&emails);
    let count = |v: FunnelVerdict| verdicts.iter().filter(|&&x| x == v).count();
    println!("\nfunnel verdicts (at generated scale):");
    println!(
        "  layer 1 (headers):        {}",
        count(FunnelVerdict::SpamHeader)
    );
    println!(
        "  layer 2 (scorer):         {}",
        count(FunnelVerdict::SpamScore)
    );
    println!(
        "  layer 3 (collaborative):  {}",
        count(FunnelVerdict::SpamCollaborative)
    );
    println!(
        "  layer 4 (reflections):    {}",
        count(FunnelVerdict::Reflection)
    );
    println!(
        "  layer 5 (frequency):      {}",
        count(FunnelVerdict::FrequencyFiltered)
    );
    println!(
        "  surviving receiver typos: {}",
        count(FunnelVerdict::ReceiverTypo)
    );
    println!(
        "  surviving SMTP typos:     {}",
        count(FunnelVerdict::SmtpTypo)
    );

    // 4. Project to yearly volumes (§4.4.1).
    let analysis = StudyAnalysis::new(&infra, &emails, &verdicts, spam_scale);
    let v = analysis.volumes();
    println!("\nyearly projections (spam scaled back to paper volume):");
    println!(
        "  total:                    {:>12.0}  (paper: 118,894,960)",
        v.total
    );
    println!(
        "  receiver+reflection:      {:>12.0}  (paper: 6,041)",
        v.receiver_reflection
    );
    println!(
        "  SMTP typos:               {:>6.0} – {:>6.0}  (paper: 415 – 5,970)",
        v.smtp_range.0, v.smtp_range.1
    );

    // 5. Figure 5: which domains earn their keep.
    println!("\ntop domains by surviving receiver typos:");
    for (domain, n, cum) in analysis.figure5().into_iter().take(8) {
        println!("  {domain:<16} {n:>6}  (cumulative {cum:.2})");
    }
}
