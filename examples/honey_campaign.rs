//! The Section-7 experiment end to end: probe candidate typosquatting
//! domains with benign emails, then send the four honey-email designs to
//! everyone who accepted, and watch what happens.
//!
//! ```sh
//! cargo run --release --example honey_campaign
//! ```

use ets_ecosystem::population::{PopulationConfig, World};
use ets_honeypot::behavior::BehaviorModel;
use ets_honeypot::campaign::{HoneyCampaign, ProbeCampaign};

fn main() {
    let world = World::build(PopulationConfig {
        n_targets: 300,
        ..PopulationConfig::default()
    });
    let behavior = BehaviorModel::default();

    // --- phase 1: benign probes (Table 5 / Table 6) ---------------------
    let probe = ProbeCampaign::new(&world, behavior.clone()).run();
    println!("probed {} candidate typo domains:", probe.total());
    for (label, public, private) in probe.table5_rows() {
        println!("  {label:<16} public {public:>6}  private {private:>6}");
    }
    println!(
        "accepting domains: {}; probe emails read: {}",
        probe.accepted.len(),
        probe.reads.len()
    );

    // --- phase 2: honey tokens -------------------------------------------
    let campaign = HoneyCampaign::new(&world, behavior);
    let pilot_targets = campaign.pilot_selection(&probe.accepted, 4, 738);
    let pilot = campaign.run(&pilot_targets);
    println!(
        "\npilot: {} honey emails to {} domains → {} opens",
        pilot.sent,
        pilot.domains,
        pilot.monitor.summary().opens
    );

    let main_run = campaign.run(&probe.accepted);
    let s = main_run.monitor.summary();
    println!(
        "main run: {} honey emails to {} domains",
        main_run.sent, main_run.domains
    );
    println!(
        "  opened: {} emails on {} domains; tokens accessed: {} on {} domains",
        s.opens, s.domains_read, s.token_accesses, s.domains_acted
    );
    println!(
        "  median open delay {:.1}h; {} domains re-opened later",
        s.median_open_delay_hours, s.reopened_domains
    );
    println!("\nfirst observed accesses:");
    for e in main_run.monitor.events().iter().take(8) {
        println!(
            "  {:>12?} {:<22} +{:>6.1}h  from {}",
            e.kind,
            e.domain.to_string(),
            e.hours_after_send,
            e.origin
        );
    }
    println!("\nconclusion (as in the paper): the infrastructure collects in bulk,");
    println!("but almost nobody acts on what it captures — the threat is latent.");
}
