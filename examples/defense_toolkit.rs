//! The Section-8 defenses in action: typo correction for address input
//! fields, and a budgeted defensive-registration plan for a provider —
//! checked against live DNS (the simulated authority served over UDP).
//!
//! ```sh
//! cargo run --example defense_toolkit
//! ```

use ets_core::alexa;
use ets_core::defense::{plan_registrations, TypoCorrector};
use ets_core::typing::TypingModel;
use ets_core::DomainName;
use ets_dns::record::RecordType;
use ets_dns::server::{query_udp, DnsServer};
use ets_dns::wire::{DnsMessage, Rcode};
use ets_dns::{Fqdn, Resolver};
use ets_ecosystem::population::{PopulationConfig, World};
use std::time::Duration;

fn main() {
    // --- typo correction (the input-field defense) -----------------------
    let corrector = TypoCorrector::new(alexa::synthetic_top(100), TypingModel::default());
    println!("typo correction for address fields:");
    for typed in [
        "alice@gmial.com",
        "bob@outlo0k.com",
        "carol@hotmial.com",
        "dan@gmail.com",
    ] {
        let suggestions = corrector.suggest_for_address(typed, 2);
        match suggestions.first() {
            Some(s) => println!(
                "  {typed:<22} did you mean @{}? (confidence {:.0}%, {} at position {})",
                s.target,
                s.confidence * 100.0,
                s.candidate.kind,
                s.candidate.position
            ),
            None => println!("  {typed:<22} looks fine"),
        }
    }

    // --- defensive registration planning ---------------------------------
    let world = World::build(PopulationConfig::tiny(88));
    let target: DomainName = "gmail.com".parse().expect("valid");
    let taken: Vec<DomainName> = world
        .ctypos
        .iter()
        .filter(|c| c.candidate.target == target)
        .map(|c| c.candidate.domain.clone())
        .collect();
    println!(
        "\ndefensive plan for {target} (${} budget, {} names already taken by others):",
        170,
        taken.len()
    );
    let plan = plan_registrations(&target, 4e9, &TypingModel::default(), &taken, 170.0, 8.5);
    for p in plan.iter().take(10) {
        println!(
            "  register {:<18} expected {:>9.0} emails/yr  coverage {:>5.1}%  (${:.2} total)",
            p.candidate.domain.as_str(),
            p.expected_emails,
            p.cumulative_coverage * 100.0,
            p.cumulative_cost
        );
    }

    // --- verify against live (simulated) DNS ------------------------------
    // A defender would check which plan entries are genuinely unregistered:
    // NXDOMAIN from the authority means the name is available.
    let server = DnsServer::bind("127.0.0.1:0", Resolver::new(world.registry.clone()))
        .expect("bind loopback UDP");
    println!("\nchecking availability against DNS at {}:", server.addr());
    for p in plan.iter().take(5) {
        let name: Fqdn = p.candidate.domain.as_str().parse().expect("valid");
        let q = DnsMessage::query(1, name, RecordType::A);
        let resp = query_udp(server.addr(), &q, Duration::from_secs(2)).expect("query");
        let status = match resp.rcode {
            Rcode::NxDomain => "available",
            _ => "TAKEN",
        };
        println!("  {:<18} {status}", p.candidate.domain.as_str());
    }
    server.shutdown();
}
