//! Offline stand-in for `serde`.
//!
//! The real serde is a visitor-based framework generic over data formats;
//! this workspace only ever serializes to and from JSON, so the stand-in
//! collapses the model to a single tree type: [`Serialize`] renders a
//! value into a [`Value`], [`Deserialize`] reads one back. `serde_json`
//! (also vendored) re-exports [`Value`] and adds text encoding/decoding,
//! and the vendored `serde_derive` generates impls of these traits for
//! `#[derive(Serialize, Deserialize)]` types, honouring the attribute
//! subset the workspace uses: `#[serde(skip)]` on fields and
//! `#[serde(try_from = "String", into = "String")]` on containers.

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

pub use serde_derive::{Deserialize, Serialize};

/// JSON object representation: sorted keys, like default `serde_json`.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float.
    Float(f64),
}

impl Number {
    /// As `f64`, always possible.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// As `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            Number::Float(_) => None,
        }
    }
}

/// A JSON value tree — the single data model of the vendored serde stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key-sorted object.
    Object(Map),
}

impl Value {
    /// Borrow as object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Unsigned view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Deserialization error: a message plus nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// Converts to a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Converts from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::new("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                }
                .ok_or_else(|| DeError::new("expected integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // Non-finite floats serialize to null; round-trip them as NaN.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::new("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected string"))?;
        Ok(intern(s))
    }
}

/// Global interner backing `Deserialize for &'static str`: each distinct
/// string is leaked once and reused afterwards.
fn intern(s: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(existing) = set.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::new("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array().map(Vec::as_slice) {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::new("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array().map(Vec::as_slice) {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::new("expected 3-element array")),
        }
    }
}

/// Serializes a map key: must render as a JSON string.
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(n) => match n {
            Number::PosInt(v) => v.to_string(),
            Number::NegInt(v) => v.to_string(),
            Number::Float(v) => format!("{v:?}"),
        },
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string, got {other:?}"),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    K::from_value(&Value::String(key.to_owned()))
        .or_else(|_| {
            // Integer-keyed maps: keys were stringified on the way out.
            if let Ok(n) = key.parse::<u64>() {
                K::from_value(&Value::Number(Number::PosInt(n)))
            } else if let Ok(n) = key.parse::<i64>() {
                K::from_value(&Value::Number(Number::NegInt(n)))
            } else {
                Err(DeError::new("unparseable map key"))
            }
        })
        .map_err(|_| DeError::new("unparseable map key"))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .ok_or_else(|| DeError::new("expected IPv4 string"))?
            .parse()
            .map_err(|_| DeError::new("invalid IPv4 address"))
    }
}

#[doc(hidden)]
pub mod __private {
    //! Helpers referenced by `serde_derive`-generated code.

    use super::{DeError, Deserialize, Map, Value};

    /// Reads a struct field; missing keys deserialize as `null` (so
    /// `Option` fields tolerate omission).
    pub fn de_field<T: Deserialize>(map: &Map, key: &str) -> Result<T, DeError> {
        match map.get(key) {
            Some(v) => T::from_value(v)
                .map_err(|e| DeError::new(format!("field `{key}`: {e}"))),
            None => T::from_value(&Value::Null)
                .map_err(|_| DeError::new(format!("missing field `{key}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(
            String::from_value(&"hi".to_owned().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        let arr = [1.5f64, 2.5];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn map_with_stringy_keys() {
        let mut m = HashMap::new();
        m.insert("a".to_owned(), 1u32);
        let v = m.to_value();
        let back: HashMap<String, u32> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn ipv4_round_trip() {
        let ip: Ipv4Addr = "198.51.100.7".parse().unwrap();
        assert_eq!(Ipv4Addr::from_value(&ip.to_value()).unwrap(), ip);
    }
}
