//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel` MPMC channels (both `Sender` and
//! `Receiver` are `Clone`, unlike `std::sync::mpsc`) built on a
//! `Mutex<VecDeque>` plus condvars. Disconnection is tracked by live
//! sender/receiver counts, matching crossbeam's semantics for the
//! operations the workspace uses: `send`, `recv`, `try_recv`,
//! `recv_timeout`, `try_iter`, and `iter`.

pub mod channel {
    //! MPMC channel implementation.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out while the channel was empty.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.inner.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages (matches `crossbeam_channel::Sender::len`).
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or the channel
        /// disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.queue.lock().unwrap();
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, timed_out) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = s;
                if timed_out.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Iterator over currently queued messages; never blocks.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Blocking iterator; ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// See [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn threads_share_channel() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            for h in handles {
                h.join().unwrap();
            }
            let mut got: Vec<i32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
