//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored serde's Value-based `Serialize`/`Deserialize`
//! traits without `syn`/`quote`: the item is parsed directly from
//! `proc_macro::TokenTree`s and the impl is generated as a source string,
//! then re-parsed into a `TokenStream`.
//!
//! Supported shapes (everything this workspace derives): named structs,
//! tuple structs, unit structs, and enums with unit / tuple / struct
//! variants — all without generics. Supported attributes:
//! `#[serde(skip)]` on named fields and
//! `#[serde(try_from = "...", into = "...")]` on containers.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Payload {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    /// The `try_from`/`into` proxy type, when the attribute is present.
    proxy: Option<String>,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c).parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c).parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let proxy = parse_outer_attrs(&tokens, &mut i).proxy;
    skip_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored derive");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: expected struct or enum, got `{other}`"),
    };

    Container { name, proxy, shape }
}

struct Attrs {
    skip: bool,
    proxy: Option<String>,
}

/// Consumes leading `#[...]` attributes, extracting the serde ones.
fn parse_outer_attrs(tokens: &[TokenTree], i: &mut usize) -> Attrs {
    let mut attrs = Attrs {
        skip: false,
        proxy: None,
    };
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*i + 1) else {
            break;
        };
        parse_serde_attr(g.stream(), &mut attrs);
        *i += 2;
    }
    attrs
}

/// Inspects one attribute body (`serde(...)`, `doc = ...`, ...).
fn parse_serde_attr(body: TokenStream, attrs: &mut Attrs) {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        if let TokenTree::Ident(id) = &args[j] {
            match id.to_string().as_str() {
                "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
                "try_from" | "into" => {
                    // `try_from = "String"` — record the proxy type.
                    if let (
                        Some(TokenTree::Punct(eq)),
                        Some(TokenTree::Literal(lit)),
                    ) = (args.get(j + 1), args.get(j + 2))
                    {
                        if eq.as_char() == '=' {
                            let raw = lit.to_string();
                            attrs.proxy = Some(raw.trim_matches('"').to_owned());
                            j += 2;
                        }
                    }
                }
                other => panic!("serde_derive: unsupported serde attribute `{other}`"),
            }
        }
        j += 1;
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Parses `name: Type, ...` fields of a braced struct body.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = parse_outer_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            skip: attrs.skip,
        });
    }
    fields
}

/// Advances past a type, stopping at a top-level comma (consumed).
/// Commas inside `<...>` are part of the type; groups are single tokens.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Number of comma-separated fields in a tuple-struct/variant body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // Each field may start with attributes and a visibility.
        let _ = parse_outer_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _ = parse_outer_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let payload = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Payload::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Payload::Struct(
                    parse_named_fields(g.stream())
                        .into_iter()
                        .map(|f| f.name)
                        .collect(),
                )
            }
            _ => Payload::Unit,
        };
        // Skip any explicit discriminant and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, payload });
    }
    variants
}

// --------------------------------------------------------------- codegen

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = if let Some(proxy) = &c.proxy {
        format!(
            "let proxy: {proxy} = <Self as ::std::clone::Clone>::clone(self).into();\n\
             ::serde::Serialize::to_value(&proxy)"
        )
    } else {
        match &c.shape {
            Shape::NamedStruct(fields) => {
                let mut s = String::from("let mut m = ::serde::Map::new();\n");
                for f in fields.iter().filter(|f| !f.skip) {
                    s.push_str(&format!(
                        "m.insert(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0}));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::Value::Object(m)");
                s
            }
            Shape::TupleStruct(1) => {
                "::serde::Serialize::to_value(&self.0)".to_owned()
            }
            Shape::TupleStruct(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!(
                    "::serde::Value::Array(::std::vec![{}])",
                    elems.join(", ")
                )
            }
            Shape::UnitStruct => "::serde::Value::Null".to_owned(),
            Shape::Enum(variants) => {
                let mut s = String::from("match self {\n");
                for v in variants {
                    let vn = &v.name;
                    match &v.payload {
                        Payload::Unit => s.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\")),\n"
                        )),
                        Payload::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_owned()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Array(::std::vec![{}])",
                                    elems.join(", ")
                                )
                            };
                            s.push_str(&format!(
                                "{name}::{vn}({binds_pat}) => {{\n\
                                 let mut m = ::serde::Map::new();\n\
                                 m.insert(::std::string::String::from(\"{vn}\"), {inner});\n\
                                 ::serde::Value::Object(m)\n}}\n",
                                binds_pat = binds.join(", ")
                            ));
                        }
                        Payload::Struct(field_names) => {
                            let pat = field_names.join(", ");
                            let mut inner =
                                String::from("let mut inner = ::serde::Map::new();\n");
                            for fname in field_names {
                                inner.push_str(&format!(
                                    "inner.insert(::std::string::String::from(\"{fname}\"), \
                                     ::serde::Serialize::to_value({fname}));\n"
                                ));
                            }
                            s.push_str(&format!(
                                "{name}::{vn} {{ {pat} }} => {{\n{inner}\
                                 let mut m = ::serde::Map::new();\n\
                                 m.insert(::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(inner));\n\
                                 ::serde::Value::Object(m)\n}}\n"
                            ));
                        }
                    }
                }
                s.push('}');
                s
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = if let Some(proxy) = &c.proxy {
        format!(
            "let proxy: {proxy} = ::serde::Deserialize::from_value(v)?;\n\
             <Self as ::std::convert::TryFrom<{proxy}>>::try_from(proxy)\
             .map_err(|e| ::serde::DeError::new(::std::format!(\"{name}: {{e}}\")))"
        )
    } else {
        match &c.shape {
            Shape::NamedStruct(fields) => {
                let mut init = String::new();
                for f in fields {
                    if f.skip {
                        init.push_str(&format!(
                            "{}: ::std::default::Default::default(),\n",
                            f.name
                        ));
                    } else {
                        init.push_str(&format!(
                            "{0}: ::serde::__private::de_field(m, \"{0}\")?,\n",
                            f.name
                        ));
                    }
                }
                format!(
                    "let m = v.as_object().ok_or_else(|| \
                     ::serde::DeError::new(\"{name}: expected object\"))?;\n\
                     ::std::result::Result::Ok({name} {{\n{init}}})"
                )
            }
            Shape::TupleStruct(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
            ),
            Shape::TupleStruct(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?"))
                    .collect();
                format!(
                    "let arr = v.as_array().ok_or_else(|| \
                     ::serde::DeError::new(\"{name}: expected array\"))?;\n\
                     if arr.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::DeError::new(\"{name}: wrong tuple arity\")); }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
            Shape::UnitStruct => {
                format!("::std::result::Result::Ok({name})")
            }
            Shape::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut payload_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.payload {
                        Payload::Unit => unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        )),
                        Payload::Tuple(1) => payload_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                        )),
                        Payload::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&arr[{k}])?")
                                })
                                .collect();
                            payload_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let arr = inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::new(\"{name}::{vn}: expected array\"))?;\n\
                                 if arr.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::new(\"{name}::{vn}: wrong arity\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                                elems.join(", ")
                            ));
                        }
                        Payload::Struct(field_names) => {
                            let mut init = String::new();
                            for fname in field_names {
                                init.push_str(&format!(
                                    "{fname}: ::serde::__private::de_field(im, \"{fname}\")?,\n"
                                ));
                            }
                            payload_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let im = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::new(\"{name}::{vn}: expected object\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{\n{init}}})\n}}\n"
                            ));
                        }
                    }
                }
                format!(
                    "if let ::serde::Value::String(s) = v {{\n\
                     return match s.as_str() {{\n{unit_arms}\
                     _ => ::std::result::Result::Err(::serde::DeError::new(\
                     \"{name}: unknown variant\")),\n}};\n}}\n\
                     if let ::serde::Value::Object(m) = v {{\n\
                     if m.len() == 1 {{\n\
                     let (k, inner) = m.iter().next().unwrap();\n\
                     let _ = inner;\n\
                     return match k.as_str() {{\n{payload_arms}\
                     _ => ::std::result::Result::Err(::serde::DeError::new(\
                     \"{name}: unknown variant\")),\n}};\n}}\n}}\n\
                     ::std::result::Result::Err(::serde::DeError::new(\
                     \"{name}: expected variant string or single-key object\"))"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
