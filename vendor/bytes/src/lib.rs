//! Offline stand-in for the `bytes` crate.
//!
//! [`BytesMut`] is a `Vec<u8>` with a consumed-prefix offset, which is all
//! the workspace's DNS wire encoder and SMTP line codec need; `split_to`
//! copies instead of sharing, trading the real crate's zero-copy machinery
//! for zero dependencies. Multi-byte `put_*` writes are big-endian
//! (network order), like upstream.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Empty buffer.
    pub const fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Copies from a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes(v.as_bytes().to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

/// Growable byte buffer with an O(1) consumed-prefix (`advance`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// Empty buffer.
    pub const fn new() -> Self {
        BytesMut {
            buf: Vec::new(),
            start: 0,
        }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Unconsumed byte length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Splits off and returns the first `n` unconsumed bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = self.buf[self.start..self.start + n].to_vec();
        self.start += n;
        self.compact();
        BytesMut {
            buf: head,
            start: 0,
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.start > 0 {
            self.buf.drain(..self.start);
        }
        Bytes(self.buf)
    }

    /// Reclaims the consumed prefix when it dominates the buffer.
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
        self.compact();
    }
}

/// Write-side append operations (big-endian for multi-byte integers).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_is_big_endian() {
        let mut b = BytesMut::new();
        b.put_u16(0x1234);
        b.put_u32(0xDEADBEEF);
        assert_eq!(&b[..], &[0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn split_and_advance() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello\r\nworld");
        let line = b.split_to(5);
        assert_eq!(&line[..], b"hello");
        b.advance(2);
        assert_eq!(&b[..], b"world");
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn freeze_round_trip() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(b"abcd");
        b.advance(1);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], b"bcd");
        assert_eq!(frozen.to_vec(), b"bcd".to_vec());
    }

    #[test]
    fn index_mut_patching() {
        let mut b = BytesMut::new();
        b.put_u16(0);
        b.put_slice(b"xy");
        let patch = (2u16).to_be_bytes();
        b[0..2].copy_from_slice(&patch);
        assert_eq!(&b[..], &[0, 2, b'x', b'y']);
    }
}
