//! Offline stand-in for `serde_json`.
//!
//! Re-exports the vendored serde's [`Value`] tree and adds the JSON text
//! layer: [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], and the [`json!`] macro (a token-tree muncher handling
//! nested object/array literals, like upstream). Objects are key-sorted
//! (`BTreeMap`), matching default `serde_json` output; floats print via
//! Rust's shortest-round-trip formatting, which agrees with upstream on
//! the values this workspace emits (`1.0`, `0.25`, ...).

pub use serde::{DeError as Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::from_value(&value)
}

// --------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        // `{:?}` is shortest-round-trip with a forced decimal point
        // (`1.0`), matching upstream's ryu output for these values.
        Number::Float(v) => out.push_str(&format!("{v:?}")),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("bad \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::new("bad number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ------------------------------------------------------------ json! macro

/// Builds a [`Value`] from JSON-ish syntax, including nested literals and
/// arbitrary serializable expressions.
#[macro_export(local_inner_macros)]
macro_rules! json {
    ($($json:tt)+) => {
        json_internal!($($json)+)
    };
}

#[doc(hidden)]
#[macro_export(local_inner_macros)]
macro_rules! json_internal {
    // ---- arrays: accumulate element expressions in [] ----
    (@array [$($elems:expr,)*]) => {
        json_internal_vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        json_internal_vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        json_internal!(@array [$($elems,)* json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        json_internal!(@array [$($elems,)* json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        json_internal!(@array [$($elems,)* json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        json_internal!(@array [$($elems,)* json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        json_internal!(@array [$($elems,)* json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        json_internal!(@array [$($elems,)* json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        json_internal!(@array [$($elems,)* json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- objects: munch key tts, then the value ----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        json_internal!(@object $object [$($key)+] (json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        json_internal!(@object $object [$($key)+] (json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        json_internal!(@object $object [$($key)+] (json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        json_internal!(@object $object [$($key)+] (json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        json_internal!(@object $object [$($key)+] (json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        json_internal!(@object $object [$($key)+] (json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        json_internal!(@object $object [$($key)+] (json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    // ---- primary forms ----
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array(json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_vec {
    ($($content:tt)*) => {
        vec![$($content)*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_is_sorted_and_escaped() {
        let v = json!({ "b": 1, "a": "x\"y\n" });
        assert_eq!(to_string(&v).unwrap(), r#"{"a":"x\"y\n","b":1}"#);
    }

    #[test]
    fn nested_literals() {
        let xs = vec![1u32, 2];
        let v = json!({
            "outer": { "inner": [1, 2.5, null, true], "n": xs.len() },
            "ci": [0.5, 1.5],
            "vals": xs,
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"ci":[0.5,1.5],"outer":{"inner":[1,2.5,null,true],"n":2},"vals":[1,2]}"#
        );
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&json!(1.0f64)).unwrap(), "1.0");
        assert_eq!(to_string(&json!(0.25f64)).unwrap(), "0.25");
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a":[1,-2,3.5],"b":{"c":"é😀 ok"},"d":null}"#;
        let v: Value = from_str(text).unwrap();
        let printed = to_string(&v).unwrap();
        let v2: Value = from_str(&printed).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_round_trip() {
        let v = json!({ "rows": [{"x": 1}], "k": "v" });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\": \"v\""));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<f64> = from_str("[1.0, 2.0, 3.5]").unwrap();
        assert_eq!(xs, vec![1.0, 2.0, 3.5]);
        let err = from_str::<Vec<f64>>("[1, \"no\"]");
        assert!(err.is_err());
    }
}
