//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in a hermetic environment with no registry
//! access, so the external crates it depends on are replaced by minimal,
//! dependency-free implementations under `vendor/` via `[patch.crates-io]`.
//! Each stand-in implements exactly the API subset the workspace uses,
//! with the same semantics (and, where it matters for reproducibility,
//! the same bit-level behaviour) as the real crate.
//!
//! Subset provided here: [`RngCore`], [`SeedableRng`] (including the
//! splitmix64-based `seed_from_u64`), the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`, `fill`), the [`distributions::Standard`]
//! distribution for primitives, and [`seq::SliceRandom`].

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed byte-array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64
    /// exactly like upstream `rand_core` so seeds are portable.
    fn seed_from_u64(mut state: u64) -> Self {
        // splitmix64 (same constants as rand_core 0.6).
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! The `Standard` distribution over primitive types.

    use super::RngCore;

    /// Maps raw generator output to a value of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: full integer range, `[0, 1)` floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_uint {
        ($($t:ty => $via:ident),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }
    impl_standard_uint!(
        u8 => next_u32, u16 => next_u32, u32 => next_u32,
        u64 => next_u64, usize => next_u64, u128 => next_u64,
        i8 => next_u32, i16 => next_u32, i32 => next_u32,
        i64 => next_u64, isize => next_u64,
    );

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits, uniform on [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

mod uniform {
    //! Range sampling used by `Rng::gen_range`.
    //!
    //! Mirrors real rand's structure: a blanket `SampleRange<T>` impl over
    //! `T: SampleUniform` so type inference can pin `T` to the range's
    //! item type (per-type impls would leave integer literals ambiguous).

    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be drawn uniformly from a range.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Uniform draw from `[lo, hi)` or `[lo, hi]` when `inclusive`.
        fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
            -> Self;
    }

    /// A range argument accepted by [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_range(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "gen_range: empty range");
            T::sample_range(rng, lo, hi, true)
        }
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                    lo.wrapping_add(sample_below(rng, span) as $t)
                }
            }
        )*};
    }
    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Unbiased integer in `[0, span)` via widening-multiply rejection
    /// (Lemire); `span == 0` means the full 2^64 range.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
        if span == 0 || span > u64::MAX as u128 {
            return rng.next_u64();
        }
        let span = span as u64;
        let zone = span.wrapping_neg() % span; // # of biased low leftovers
        loop {
            let v = rng.next_u64();
            let m = (v as u128) * (span as u128);
            if (m as u64) >= zone {
                return (m >> 64) as u64;
            }
        }
    }

    impl SampleUniform for f64 {
        fn sample_range<R: RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi: Self,
            _inclusive: bool,
        ) -> Self {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + (hi - lo) * unit
        }
    }

    impl SampleUniform for f32 {
        fn sample_range<R: RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi: Self,
            _inclusive: bool,
        ) -> Self {
            let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
            lo + (hi - lo) * unit
        }
    }
}

pub use uniform::{SampleRange, SampleUniform};

/// User-facing extension methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

pub mod prelude {
    //! Commonly used traits, mirroring `rand::prelude`.
    pub use super::distributions::Distribution;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    struct Counter(u64);
    impl super::RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
