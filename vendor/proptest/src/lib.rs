//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing surface this workspace uses: the
//! [`proptest!`] macro (mixed `name in strategy` / `name: Type`
//! parameters), [`Strategy`] with `prop_filter`, [`any`],
//! [`collection::vec`], numeric-range strategies, a regex-subset string
//! strategy (sequences of `[class]{m,n}` atoms and literal characters),
//! and the `prop_assert*` macros.
//!
//! No shrinking: a failing case panics with its inputs' debug rendering.
//! Sampling is deterministic per test (the RNG is seeded from the test
//! name), so failures reproduce across runs.

/// Number of cases each property runs.
pub const CASES: u32 = 128;

/// Deterministic sampling RNG (splitmix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test name, stable across runs.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Generates values of an associated type from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Rejects samples failing `pred`, retrying (bounded) until one passes.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive samples", self.reason);
    }
}

/// Types with a default generation strategy (the `any::<T>()` form).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.below(8) == 0 {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        } else {
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(101) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(33) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

// ------------------------------------------------- regex-subset strings

/// One parsed regex atom: a set of candidate chars and a repetition range.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_regex_subset(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in regex `{pattern}`"))
                    + i;
                let set = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                set
            }
            '\\' => {
                let c = unescape(chars.get(i + 1).copied(), pattern);
                i += 2;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional repetition suffix.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in regex `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition bound"),
                    hi.trim().parse().expect("bad repetition bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in regex `{pattern}`");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let lo = if body[i] == '\\' {
            i += 1;
            unescape(body.get(i).copied(), pattern)
        } else {
            body[i]
        };
        // `a-z` range (a trailing `-` is a literal).
        if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
            let hi = if body[i + 2] == '\\' {
                unescape(body.get(i + 3).copied(), pattern)
            } else {
                body[i + 2]
            };
            for c in lo..=hi {
                set.push(c);
            }
            i += if body[i + 2] == '\\' { 4 } else { 3 };
        } else {
            set.push(lo);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty class in regex `{pattern}`");
    set
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('n') => '\n',
        Some('r') => '\r',
        Some('t') => '\t',
        Some(c) => c,
        None => panic!("dangling escape in regex `{pattern}`"),
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex_subset(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Vector of `element` samples with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min: len.start,
            max: len.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs `f` for [`CASES`] deterministic cases, panicking on the first
/// failure.
pub fn run_cases(name: &str, f: impl Fn(&mut TestRng) -> Result<(), TestCaseError>) {
    let mut rng = TestRng::from_name(name);
    for case in 0..CASES {
        if let Err(e) = f(&mut rng) {
            panic!("proptest `{name}` failed at case {case}: {e}");
        }
    }
}

/// Declares property tests. Each function becomes a `#[test]` that runs
/// [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng, $($params)*);
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Binds `name in strategy` / `name: Type` parameter lists (internal).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
}

/// Inequality assertion for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn label() -> impl Strategy<Value = String> {
        "[a-z0-9]{1,20}".prop_filter("nonempty", |s| !s.is_empty())
    }

    proptest! {
        #[test]
        fn regex_strategy_respects_class_and_len(s in "[a-z]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn typed_params_and_vec(data in crate::collection::vec(any::<u8>(), 1..64), id: u64) {
            prop_assert!(!data.is_empty() && data.len() < 64);
            let _ = id;
        }

        #[test]
        fn filtered_strategy(s in label()) {
            prop_assert!(!s.is_empty());
        }
    }

    #[test]
    fn printable_class_with_space_range() {
        let mut rng = crate::TestRng::from_name("x");
        for _ in 0..100 {
            let s = Strategy::sample(&"[ -~]{0,10}", &mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        let sa = Strategy::sample(&"[a-z]{8}", &mut a);
        let sb = Strategy::sample(&"[a-z]{8}", &mut b);
        assert_eq!(sa, sb);
    }
}
