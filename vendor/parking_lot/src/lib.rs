//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's panic-free API: `lock()`,
//! `read()` and `write()` return guards directly instead of `Result`s.
//! Poisoning is ignored (a poisoned lock yields its inner guard), matching
//! parking_lot's no-poisoning semantics closely enough for this workspace.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
