//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha stream cipher core (Bernstein's design:
//! 16-word state, quarter-round column/diagonal double rounds, feed-forward
//! addition) driving the `rand` stand-in's `RngCore`/`SeedableRng` traits.
//! The keystream is high-quality and fully determined by the 256-bit seed,
//! which is all the workspace requires; it is not bit-compatible with
//! upstream `rand_chacha`'s SIMD block layout.

use rand::{RngCore, SeedableRng};

/// ChaCha with a const number of double rounds (`R = 4` → ChaCha8).
#[derive(Clone, Debug)]
pub struct ChaChaRng<const R: usize> {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (state words 12, 13).
    counter: u64,
    /// 64-bit stream id (state words 14, 15).
    stream: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 = exhausted.
    index: usize,
}

/// ChaCha8: 8 rounds (4 double rounds). The workspace's standard PRNG.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha12: 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha20: 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const R: usize> ChaChaRng<R> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..R {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Selects an independent keystream (state words 14/15).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = 16;
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaChaRng {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(100);
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn chacha20_keystream_matches_rfc7539() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 00 00 00 09 00 00 00 4a 00 00 00 00.
        // Our stream layout is (counter: u64 LE, stream: u64 LE) in words
        // 12..16, so replicate the vector's words directly.
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(seed);
        // words 12,13 = counter; vector has word12=1, word13=0x09000000.
        rng.counter = 1 | (0x0900_0000u64 << 32);
        // words 14,15 = stream; vector has word14=0x4a000000, word15=0.
        rng.stream = 0x4a00_0000;
        rng.index = 16;
        let first = rng.next_u32();
        assert_eq!(first, 0xe4e7_f110, "RFC 7539 block word 0");
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        b.set_stream(7);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_via_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
