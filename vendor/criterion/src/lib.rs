//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock timing harness with criterion's API shape:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Each benchmark warms up briefly, then reports the mean
//! time per iteration over a short measurement window — no statistics,
//! plots, or saved baselines.
//!
//! When invoked with `--test` (as `cargo test` does for benches), each
//! benchmark body runs exactly once so test runs stay fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget per benchmark measurement.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            result: None,
        };
        f(&mut b);
        report(&name, &b);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes measurement by
    /// wall-clock budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.criterion
            .bench_function(format!("{}/{}", self.name, id.0), f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.criterion
            .bench_function(format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; prints nothing extra).
    pub fn finish(self) {}
}

/// A benchmark identifier within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier rendering a parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Identifier with a function name and parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    test_mode: bool,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measures `f`, storing total elapsed time and iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        // Warmup: estimate per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;
        let iters = if per_iter.is_zero() {
            1_000_000
        } else {
            (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn report(name: &str, b: &Bencher) {
    match b.result {
        Some((_, 1)) if b.test_mode => println!("bench {name}: ok (test mode)"),
        Some((elapsed, iters)) => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("bench {name}: {} per iter ({iters} iters)", fmt_ns(ns));
        }
        None => println!("bench {name}: no measurement (Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = false;
        c.bench_function("x", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        // Filtered out: closure must not run.
        group.bench_function("skipped", |_b| panic!("should be filtered"));
        group.finish();
    }
}
