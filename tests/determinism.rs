//! Seed-stable determinism of the parallel pipeline stages.
//!
//! The execution layer's contract is that `--threads 1` and `--threads N`
//! produce byte-identical output: every parallel unit draws from its own
//! derived RNG stream and results reassemble in canonical order, so
//! nothing can depend on scheduling. These tests run each pipeline stage
//! sequentially and with several worker counts and compare serialized
//! output verbatim.

use ets_collector::funnel::Funnel;
use ets_collector::infra::CollectionInfra;
use ets_collector::traffic::{TrafficConfig, TrafficGenerator};
use ets_dns::Fqdn;
use ets_ecosystem::population::{PopulationConfig, World};
use ets_ecosystem::whois_cluster::{self, WhoisRow};
use std::sync::Mutex;

/// `set_threads` is process-global; tests must not interleave.
static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per worker count and asserts all outputs are equal.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(label: &str, mut f: impl FnMut() -> T) {
    ets_parallel::set_threads(1);
    let sequential = f();
    for threads in [2, 3, 8] {
        ets_parallel::set_threads(threads);
        let parallel = f();
        assert!(
            parallel == sequential,
            "{label}: output with {threads} threads differs from sequential"
        );
    }
    ets_parallel::set_threads(0);
}

fn world_fingerprint(w: &World) -> String {
    // CtypoInfo and Registrant serialize; the registry is exercised via
    // the registration records of every ctypo.
    let mut regs = String::new();
    for c in &w.ctypos {
        let fq = Fqdn::from_domain(&c.candidate.domain);
        let r = w.registry.registration(&fq).expect("ctypo registered");
        regs.push_str(&format!("{r:?}\n"));
    }
    format!(
        "{}\n{}\n{:?}\n{regs}",
        serde_json::to_string(&w.ctypos).expect("serializable"),
        serde_json::to_string(&w.registrants).expect("serializable"),
        w.ns_customer_base,
    )
}

#[test]
fn world_build_is_thread_invariant() {
    let _guard = LOCK.lock().unwrap();
    assert_thread_invariant("World::build", || {
        world_fingerprint(&World::build(PopulationConfig::tiny(42)))
    });
}

#[test]
fn traffic_generation_is_thread_invariant() {
    let _guard = LOCK.lock().unwrap();
    let infra = CollectionInfra::build();
    assert_thread_invariant("TrafficGenerator::generate", || {
        let gen = TrafficGenerator::new(&infra, TrafficConfig::test_scale(42));
        gen.generate()
            .iter()
            .map(|e| format!("{:?}|{:?}|{:?}\n", e.collected, e.truth, e.sensitive))
            .collect::<String>()
    });
}

#[test]
fn funnel_classification_is_thread_invariant() {
    let _guard = LOCK.lock().unwrap();
    let infra = CollectionInfra::build();
    ets_parallel::set_threads(0);
    let collected: Vec<_> = TrafficGenerator::new(&infra, TrafficConfig::test_scale(43))
        .generate()
        .into_iter()
        .map(|e| e.collected)
        .collect();
    let funnel = Funnel::new(&infra);
    assert_thread_invariant("Funnel::classify_all", || funnel.classify_all(&collected));
}

#[test]
fn whois_clustering_is_thread_invariant() {
    let _guard = LOCK.lock().unwrap();
    ets_parallel::set_threads(0);
    let world = World::build(PopulationConfig::tiny(44));
    let rows: Vec<WhoisRow> = world
        .ctypos
        .iter()
        .map(|c| {
            let fq = Fqdn::from_domain(&c.candidate.domain);
            let reg = world.registry.registration(&fq).expect("registered");
            WhoisRow {
                domain: fq,
                whois: reg.public_whois(),
                private: reg.is_private(),
            }
        })
        .collect();
    assert_thread_invariant("cluster_registrants", || {
        whois_cluster::cluster_registrants(&rows)
    });
}
