//! Equivalence properties for the `ets-scan` automaton and the collector
//! layers that moved onto it: the compiled case-folding pattern matcher
//! must agree exactly with a byte-level naive scan on arbitrary inputs,
//! and the spam scorer and sensitive-info scrubber must return outputs
//! byte-identical with their retained legacy paths — including on
//! case-folding and overlapping-pattern edge cases.

use ets_collector::scrub;
use ets_collector::spamscore::SpamScorer;
use ets_mail::Message;
use ets_scan::{contains_fold, PatternSet, TokenStream};
use proptest::prelude::*;

/// Patterns: short mixed-case strings over the bytes the rule tables
/// use, including punctuation cues and repeated letters (so shared
/// prefixes, nested patterns, and self-overlaps all occur).
fn pattern() -> impl Strategy<Value = String> {
    "[a-cA-C!$:# ]{1,5}"
}

/// Haystacks: longer texts over a wider alphabet, with digits, newlines
/// and multi-byte characters mixed in.
fn haystack() -> impl Strategy<Value = String> {
    "[a-cA-C0-9!$:# .,;\nü€]{0,60}"
}

/// The reference matcher: fold both sides with `to_ascii_lowercase`
/// semantics and compare byte windows. Returns `(pattern, start, end)`
/// triples in the automaton's documented order — increasing end, and at
/// equal end longest pattern first, then compile order.
fn naive_matches(patterns: &[String], text: &str) -> Vec<(usize, usize, usize)> {
    let fold = |s: &str| {
        s.bytes()
            .map(|b| b.to_ascii_lowercase())
            .collect::<Vec<u8>>()
    };
    let hay = fold(text);
    let mut out: Vec<(usize, usize, usize)> = Vec::new();
    for (pi, p) in patterns.iter().enumerate() {
        let needle = fold(p);
        if needle.len() > hay.len() {
            continue;
        }
        for start in 0..=hay.len() - needle.len() {
            if hay[start..start + needle.len()] == needle[..] {
                out.push((pi, start, start + needle.len()));
            }
        }
    }
    out.sort_by(|a, b| {
        (a.2, std::cmp::Reverse(a.2 - a.1), a.0).cmp(&(b.2, std::cmp::Reverse(b.2 - b.1), b.0))
    });
    out
}

proptest! {
    /// `find_all` emits exactly the naive scan's matches — same pattern
    /// indices, same byte offsets, same order.
    #[test]
    fn find_all_matches_naive_scan(
        patterns in proptest::collection::vec(pattern(), 1..6),
        text in haystack(),
    ) {
        let tagged: Vec<(&str, usize)> =
            patterns.iter().map(String::as_str).zip(0..).collect();
        let set = PatternSet::compile(&tagged);
        let got: Vec<(usize, usize, usize)> =
            set.find_all(&text).map(|m| (m.pattern, m.start, m.end)).collect();
        prop_assert_eq!(got, naive_matches(&patterns, &text));
    }

    /// `any_match` agrees with the lowercase-and-`contains` probe it
    /// replaces, for every pattern in the set.
    #[test]
    fn any_match_matches_contains(
        patterns in proptest::collection::vec(pattern(), 1..6),
        text in haystack(),
    ) {
        let tagged: Vec<(&str, usize)> =
            patterns.iter().map(String::as_str).zip(0..).collect();
        let set = PatternSet::compile(&tagged);
        let lower = text.to_ascii_lowercase();
        let reference = patterns
            .iter()
            .any(|p| lower.contains(&p.to_ascii_lowercase()));
        prop_assert_eq!(set.any_match(&text), reference);
    }

    /// `weighted_score` equals the legacy shape — sum the weight of each
    /// distinct pattern that occurs anywhere, in table order — bitwise.
    #[test]
    fn weighted_score_matches_contains_sum(
        patterns in proptest::collection::vec(pattern(), 1..6),
        a in haystack(),
        b in haystack(),
    ) {
        let tagged: Vec<(&str, f64)> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (p.as_str(), i as f64 * 0.7 + 0.3))
            .collect();
        let set = PatternSet::compile(&tagged);
        let (la, lb) = (a.to_ascii_lowercase(), b.to_ascii_lowercase());
        let mut reference = 0.0f64;
        let mut hits = 0usize;
        for (p, w) in &tagged {
            let q = p.to_ascii_lowercase();
            if la.contains(&q) || lb.contains(&q) {
                reference += w;
                hits += 1;
            }
        }
        let got = set.weighted_score(&[&a, &b]);
        prop_assert_eq!(got.0.to_bits(), reference.to_bits());
        prop_assert_eq!(got.1, hits);
    }

    /// `contains_fold` equals allocate-lowercase-then-contains.
    #[test]
    fn contains_fold_matches_lowercase_contains(
        needle in "[a-c!$: ]{1,4}",
        text in haystack(),
    ) {
        prop_assert_eq!(
            contains_fold(&text, &needle),
            text.to_ascii_lowercase().contains(&needle)
        );
    }

    /// The zero-copy tokenizer equals the char-predicate split it
    /// replaced in the funnel's bag-of-words.
    #[test]
    fn token_stream_matches_split(text in haystack()) {
        let via_stream: Vec<&str> = TokenStream::alnum(&text).map(|t| t.text).collect();
        let via_split: Vec<&str> = text
            .split(|c: char| !c.is_ascii_alphanumeric())
            .filter(|w| !w.is_empty())
            .collect();
        prop_assert_eq!(via_stream, via_split);
    }
}

/// Subject/body fragments that steer generated emails through every rule
/// body: spam tokens (nested and overlapping), cue punctuation, URLs,
/// credential keywords, digit runs with and without id cues.
const FRAGMENTS: [&str; 18] = [
    "FREE money now",
    "click here!! urgent!!",
    "Viagra viagra VIAGRA",
    "$$$ winner $$$",
    "http://a.example http://b.example https://c.example",
    "re: re: your order",
    "password: hunter42",
    "user name: alice77.",
    "account 12345678 please",
    "ref #9876543 attached",
    "PA 15213",
    "zip 90210",
    "no. 123456",
    "call 412-268-3000 on 06/03/2021",
    "<b><i><u>html</u></i></b> <p>heavy</p> <br> <hr> <div>x</div>",
    "wire transfer to the prince, act now",
    "plain business text with nothing special",
    "usd 500 urgent",
];

fn scan_corpus(picks: &[usize]) -> String {
    let mut text = String::new();
    for &p in picks {
        text.push_str(FRAGMENTS[p]);
        text.push(' ');
    }
    text
}

proptest! {
    /// The single-pass spam scorer returns the same fired-rule list and a
    /// bitwise-identical score as the legacy lowercase-and-rescan scorer,
    /// on arbitrary fragment mixes in subject and body.
    #[test]
    fn spam_scorer_matches_legacy(
        subj_picks in proptest::collection::vec(0..FRAGMENTS.len(), 0..3),
        body_picks in proptest::collection::vec(0..FRAGMENTS.len(), 0..8),
        reply in proptest::collection::vec(0..2usize, 1..2),
    ) {
        let mut m = Message::new();
        m.headers.append("Subject", scan_corpus(&subj_picks).trim_end());
        if reply[0] == 1 {
            m.headers.append("In-Reply-To", "<x@y>");
        }
        m.body = scan_corpus(&body_picks);
        let scorer = SpamScorer::new();
        let new = scorer.score(&m);
        let legacy = scorer.score_legacy(&m);
        prop_assert_eq!(new.score.to_bits(), legacy.score.to_bits());
        prop_assert_eq!(new.rules, legacy.rules);
    }

    /// The automaton-cued scrubber produces byte-identical output —
    /// same sanitized text, same findings in the same order — as the
    /// legacy scrubber, on arbitrary fragment mixes.
    #[test]
    fn scrub_matches_legacy(
        picks in proptest::collection::vec(0..FRAGMENTS.len(), 0..8),
        filler in haystack(),
    ) {
        let mut text = scan_corpus(&picks);
        text.push_str(&filler);
        let new = scrub::scrub(&text);
        let legacy = scrub::scrub_legacy(&text);
        prop_assert_eq!(new.text, legacy.text);
        prop_assert_eq!(new.findings, legacy.findings);
    }
}

/// Hand-picked case-folding and overlap edges for the scrub paths:
/// mixed-case cues, cues split across candidate windows, overlapping
/// recognizer spans.
#[test]
fn scrub_edge_cases_match_legacy() {
    let cases = [
        "",
        "PASSWORD: SECRET99 and USER NAME: BOB77",
        "Password is swordfish; username is neo.",
        "ZIP 15213 PA 15213-3890",
        "ACCOUNT 123456789012 Ref #123456",
        "pass:x pass:abc pwd:12 passwd:longersecret",
        "no.123456 no:654321 number 111111 id 222222",
        "password: password: nested",
        "zipzip 12345 zip 12345",
        "AA 11111 aa 11111",
        "übermember 9999999",
    ];
    for text in cases {
        let new = scrub::scrub(text);
        let legacy = scrub::scrub_legacy(text);
        assert_eq!(new.text, legacy.text, "text for {text:?}");
        assert_eq!(new.findings, legacy.findings, "findings for {text:?}");
    }
}

/// Overlapping and nested patterns resolve identically to the naive scan
/// — the classic "ushers" family plus self-overlapping cues.
#[test]
fn overlapping_pattern_edges() {
    let patterns = ["he", "she", "his", "hers", "ushers", "$$", "$$$"];
    let tagged: Vec<(&str, usize)> = patterns.iter().copied().zip(0..).collect();
    let set = PatternSet::compile(&tagged);
    for text in ["ushers", "USHERS say she", "$$$$", "$$$$$", "hehehe"] {
        let got: Vec<(usize, usize, usize)> = set
            .find_all(text)
            .map(|m| (m.pattern, m.start, m.end))
            .collect();
        let patterns_owned: Vec<String> = patterns.iter().map(|s| s.to_string()).collect();
        assert_eq!(got, naive_matches(&patterns_owned, text), "text {text:?}");
    }
}
