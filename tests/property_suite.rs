//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning the core metrics, the mail codec, and the SMTP
//! session machines.

use proptest::prelude::*;

/// Arbitrary lower-case domain labels of plausible length.
fn label() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,20}".prop_filter("no hyphen edges", |s| !s.is_empty())
}

proptest! {
    /// DL distance is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn dl_is_a_metric(a in label(), b in label(), c in label()) {
        use ets_core::distance::damerau_levenshtein as dl;
        prop_assert_eq!(dl(&a, &a), 0);
        prop_assert_eq!(dl(&a, &b), dl(&b, &a));
        prop_assert!(dl(&a, &c) <= dl(&a, &b) + dl(&b, &c),
            "triangle violated: {} {} {}", a, b, c);
    }

    /// Every generated DL-1 candidate really is at DL distance one, and
    /// the FF-1 subset agrees with the fat-finger metric.
    #[test]
    fn typogen_agrees_with_metrics(sld in "[a-z]{2,12}") {
        let target: ets_core::DomainName = format!("{sld}.com").parse().unwrap();
        for cand in ets_core::typogen::generate_dl1(&target) {
            prop_assert_eq!(
                ets_core::distance::damerau_levenshtein(target.sld(), cand.domain.sld()),
                1
            );
            prop_assert_eq!(
                cand.fat_finger,
                ets_core::distance::is_ff1(target.sld(), cand.domain.sld())
            );
            // Visual distance must be positive for any real change.
            prop_assert!(cand.visual > 0.0);
        }
    }

    /// The typing model stays within probability bounds for arbitrary
    /// parameterizations in a sane range.
    #[test]
    fn typing_model_bounds(
        per_key in 0.001f64..0.2,
        boost in 1.0f64..10.0,
        base_corr in 0.0f64..0.99,
        steep in 0.1f64..20.0,
        sld in "[a-z]{3,10}",
    ) {
        let model = ets_core::typing::TypingModel {
            per_keystroke_error: per_key,
            kind_weights: [0.1, 0.3, 0.4, 0.2],
            fat_finger_boost: boost,
            base_correction: base_corr,
            visual_steepness: steep,
        };
        let target: ets_core::DomainName = format!("{sld}.com").parse().unwrap();
        for cand in ets_core::typogen::generate_dl1(&target).into_iter().take(40) {
            let pt = model.mistype_probability(&cand);
            let pc = model.correction_probability(&cand);
            prop_assert!((0.0..=1.0).contains(&pt), "Pt {}", pt);
            prop_assert!((0.0..=1.0).contains(&pc), "Pc {}", pc);
            prop_assert!(model.expected_emails(1e6, &cand) >= 0.0);
        }
    }

    /// Messages round-trip through wire format and then through a full
    /// in-memory SMTP delivery.
    #[test]
    fn message_survives_smtp_transport(
        subject in "[a-zA-Z0-9 ]{0,40}",
        body in "[ -~]{0,400}",
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let msg = ets_mail::MessageBuilder::new()
            .raw_from("sender@origin.example")
            .raw_to("user@typo-domain.example")
            .subject(&subject)
            .body(&body)
            .attach("f.bin", "application/octet-stream", data.clone())
            .build();
        let email = ets_smtp::client::Email::new(
            Some("sender@origin.example".parse().unwrap()),
            vec!["user@typo-domain.example".parse().unwrap()],
            msg.to_wire(),
        );
        let policy = ets_smtp::session::ServerPolicy::catch_all("mx.example.com", &[]);
        let result = ets_smtp::pipe::deliver(email, "client.example", false, policy).unwrap();
        prop_assert_eq!(&result.client, &ets_smtp::client::ClientOutcome::Accepted);
        let received = ets_mail::Message::parse(&result.received[0].data).unwrap();
        prop_assert_eq!(received.subject(), subject.trim());
        prop_assert_eq!(&received.attachments[0].data, &data);
    }

    /// The server session never panics on arbitrary command lines.
    #[test]
    fn server_session_total_on_garbage(lines in proptest::collection::vec("[ -~]{0,80}", 0..20)) {
        let policy = ets_smtp::session::ServerPolicy::catch_all("mx.x.com", &[]);
        let mut session = ets_smtp::session::ServerSession::new(policy);
        let _greeting = session.greeting();
        let mut in_data = false;
        for line in &lines {
            if in_data {
                // on_data consumes the payload and returns to command mode
                let action = session.on_data(line);
                prop_assert!(action.reply.code >= 200);
                in_data = false;
                continue;
            }
            let action = session.on_line(line);
            prop_assert!((200..600).contains(&action.reply.code));
            if action.enter_data {
                in_data = true;
            }
            if action.close {
                break;
            }
        }
    }

    /// Scrubbed output never leaks a digit other than '0'.
    #[test]
    fn scrub_zeroes_everything(text in "[ -~]{0,300}") {
        let result = ets_collector::scrub::scrub(&text);
        // Digits may only survive as zeros.
        prop_assert!(
            result.text.chars().filter(char::is_ascii_digit).all(|c| c == '0'),
            "digits survive: {}",
            result.text
        );
    }

    /// ChaCha20 sealing round-trips and never emits plaintext verbatim
    /// for non-trivial inputs.
    #[test]
    fn sealing_round_trips(data in proptest::collection::vec(any::<u8>(), 1..512), id: u64) {
        let key: ets_collector::crypto::Key = [0x5A; 32];
        let sealed = ets_collector::crypto::seal(&key, id, &data);
        prop_assert_eq!(ets_collector::crypto::open(&key, &sealed).unwrap(), data.clone());
        if data.len() >= 16 {
            prop_assert_ne!(sealed.ciphertext, data);
        }
    }

    /// Fault plans are total and deterministic over arbitrary keys.
    #[test]
    fn fault_plan_total(key in "[a-z0-9.-]{1,40}", seed: u64) {
        let plan = ets_smtp::fault::FaultPlan::table5_public(seed);
        let a = plan.outcome_for(&key);
        let b = plan.outcome_for(&key);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn scrub_preserves_nonsensitive_text() {
    // Deterministic anchor for the property above: ordinary prose is
    // untouched.
    let text = "hello there, the meeting is on thursday";
    let r = ets_collector::scrub::scrub(text);
    assert_eq!(r.text, text);
    assert!(r.findings.is_empty());
}
