//! The live serving telemetry plane, end to end.
//!
//! Three layers under test:
//!
//! * **Recording** — the sharded thread-local counter/histogram
//!   recorders in `ets-obs` must merge commutatively: the deterministic
//!   `snapshot_json()` is byte-identical whether a workload is recorded
//!   serially or fanned out over 2 or 8 workers (property-based).
//! * **Quantiles** — the log-linear [`LatencyHistogram`] must bracket a
//!   naive sorted-percentile oracle on arbitrary workloads, including
//!   the overflow bucket and the empty histogram, and merging split
//!   recordings must equal recording everything into one histogram.
//! * **Exposition** — a real `SmtpServer` with telemetry enabled,
//!   driven through all five Table 5 outcomes over loopback TCP, must
//!   serve a grammatically valid Prometheus `/metrics` scrape with the
//!   full outcome counter family and latency quantiles, a parseable
//!   `/snapshot.json`, and `/healthz`.

use ets_obs::latency::LatencyHistogram;
use ets_obs::metrics;
use ets_smtp::net_client::send_email;
use ets_smtp::server::{ServerOptions, SmtpServer};
use ets_smtp::session::ServerPolicy;
use ets_smtp::telemetry::TelemetryConfig;
use ets_smtp::Email;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// The metric registry is process-global; tests must not interleave.
static LOCK: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------
// Layer 1: sharded recording merges bit-identically to serial.
// ---------------------------------------------------------------------

/// Records one synthetic workload through the fan-out: every item bumps
/// a keyed counter and a keyed histogram from whatever worker thread it
/// lands on.
fn record_workload(items: &[(u8, u64)]) {
    const BOUNDS: &[u64] = &[10, 50, 100, 500];
    ets_parallel::par_map(items, |_, (key, value)| {
        metrics::counter_add(&format!("tp.counter.{}", key % 4), *value);
        metrics::histogram_record(&format!("tp.hist.{}", key % 3), BOUNDS, *value);
    });
}

proptest! {
    #[test]
    fn sharded_merge_is_bit_identical_to_serial(
        keys in proptest::collection::vec(any::<u8>(), 1..80),
        vals in proptest::collection::vec(1u64..1000, 1..80),
    ) {
        let items: Vec<(u8, u64)> = keys
            .iter()
            .zip(vals.iter())
            .map(|(&k, &v)| (k, v))
            .collect();
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        ets_parallel::set_threads(1);
        metrics::reset();
        record_workload(&items);
        let serial = metrics::snapshot_json();
        for threads in [2usize, 8] {
            ets_parallel::set_threads(threads);
            metrics::reset();
            record_workload(&items);
            let sharded = metrics::snapshot_json();
            prop_assert!(
                sharded == serial,
                "snapshot diverged at {} threads:\n{}\nvs serial:\n{}",
                threads, sharded, serial
            );
        }
        ets_parallel::set_threads(0);
    }

    // -----------------------------------------------------------------
    // Layer 1b: latency quantiles bracket a sorted oracle.
    // -----------------------------------------------------------------

    #[test]
    fn quantiles_bracket_the_sorted_oracle(
        values in proptest::collection::vec(0u64..5_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // The oracle: the same nearest-rank definition the histogram
        // uses, computed exactly on the sorted values.
        let rank = ((q * sorted.len() as f64).ceil() as u64)
            .clamp(1, sorted.len() as u64);
        let oracle = sorted[(rank - 1) as usize];
        let (lo, hi) = h.quantile_range(q).expect("non-empty");
        prop_assert!(
            lo <= oracle && oracle <= hi,
            "oracle {} outside bucket [{}, {}] at q={}", oracle, lo, hi, q
        );
        // The point estimate stays within the log-linear relative-error
        // envelope (1/16), and never exceeds the observed max.
        let est = h.quantile(q).expect("non-empty");
        prop_assert!(est <= h.max());
        prop_assert!(
            est as f64 >= oracle as f64 * (1.0 - 1.0 / 16.0) - 1.0,
            "estimate {} too far below oracle {}", est, oracle
        );
    }

    #[test]
    fn merging_split_recordings_equals_one_histogram(
        values in proptest::collection::vec(0u64..10_000_000, 0..120),
        split in 0usize..120,
    ) {
        let split = split.min(values.len());
        let mut whole = LatencyHistogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for &v in &values[..split] {
            left.record(v);
        }
        for &v in &values[split..] {
            right.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.sum(), whole.sum());
        prop_assert_eq!(left.max(), whole.max());
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            prop_assert_eq!(left.quantile(q), whole.quantile(q));
        }
    }
}

#[test]
fn quantile_edge_cases() {
    // Empty histogram: no quantiles.
    let h = LatencyHistogram::new();
    assert_eq!(h.quantile(0.5), None);
    assert_eq!(h.quantile_range(0.99), None);

    // Values beyond 2^40 land in the overflow bucket, where the
    // histogram reports the exact observed max instead of a bucket
    // bound.
    let mut h = LatencyHistogram::new();
    let big = (1u64 << 50) + 12345;
    h.record(big);
    h.record(7);
    assert_eq!(h.quantile(1.0), Some(big));
    assert_eq!(h.quantile(0.25), Some(7));
}

// ---------------------------------------------------------------------
// Layer 3: live exposition over a real SMTP serving workload.
// ---------------------------------------------------------------------

/// Issues one `HTTP/1.1` GET against `addr` and returns (status line,
/// headers, body).
fn http_get(addr: &str, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect telemetry");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_owned(), headers.to_owned(), body.to_owned())
}

/// Validates the Prometheus text exposition grammar: every line is a
/// comment (`# HELP` / `# TYPE`) or `name[{labels}] value` where the
/// name is `[a-zA-Z_:][a-zA-Z0-9_:]*` and the value parses as a float.
fn assert_exposition_grammar(body: &str) {
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("TYPE ") || comment.starts_with("HELP "),
                "bad comment line: {line:?}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line:?}");
        });
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        let name = series.split('{').next().unwrap_or(series);
        assert!(!name.is_empty(), "empty metric name in {line:?}");
        let mut chars = name.chars();
        let first = chars.next().unwrap();
        assert!(
            first.is_ascii_alphabetic() || first == '_' || first == ':',
            "bad metric name start in {line:?}"
        );
        assert!(
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "bad label block in {line:?}"
                );
            }
        }
    }
}

/// Drives one session per Table 5 outcome against `addr` (the same mix
/// as `ets-smtp --drive`): accepted delivery, foreign-recipient bounce,
/// stall past the read timeout, silent connect-and-drop, and protocol
/// garbage. Outcome counters land asynchronously as the handler threads
/// resolve; the caller polls the scrape rather than assuming they are
/// visible on return.
/// The five Table 5 delivery-outcome rows, as counter-name suffixes.
const OUTCOMES: [&str; 5] = [
    "no_error",
    "bounce",
    "timeout",
    "network_error",
    "other_error",
];

fn drive_outcome(addr: &str, read_timeout: Duration, outcome: &str) {
    let client_timeout = Duration::from_secs(5);
    match outcome {
        "no_error" => {
            let ok = Email::new(
                Some("alice@gmail.com".parse().expect("address")),
                vec!["bob@gmial.com".parse().expect("address")],
                "Subject: hi\r\n\r\nhello".to_owned(),
            );
            send_email(addr, ok, "probe.example", false, client_timeout)
                .expect("accepted delivery");
        }
        "bounce" => {
            let foreign = Email::new(
                Some("alice@gmail.com".parse().expect("address")),
                vec!["bob@unrelated.example".parse().expect("address")],
                "Subject: hi\r\n\r\nhello".to_owned(),
            );
            send_email(addr, foreign, "probe.example", false, client_timeout)
                .expect("bounced delivery");
        }
        // Timeout: greet then stall.
        "timeout" => {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(client_timeout)).expect("timeout");
            let mut banner = [0u8; 256];
            let _ = s.read(&mut banner);
            std::thread::sleep(read_timeout + Duration::from_millis(200));
        }
        // NetworkError: connect and vanish.
        "network_error" => {
            drop(TcpStream::connect(addr).expect("connect"));
        }
        // OtherError: chatter without a transaction.
        _ => {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(client_timeout)).expect("timeout");
            let mut buf = [0u8; 256];
            let _ = s.read(&mut buf);
            s.write_all(b"XYZZY plugh\r\n").expect("write");
            let _ = s.read(&mut buf);
        }
    }
}

fn drive_all_five_outcomes(addr: &str, read_timeout: Duration) {
    for o in OUTCOMES {
        drive_outcome(addr, read_timeout, o);
    }
    // Let the handler threads resolve their observers.
    std::thread::sleep(Duration::from_millis(400));
}

#[test]
fn live_scrape_shows_outcomes_and_quantiles() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    metrics::reset();
    let read_timeout = Duration::from_millis(300);
    let server = SmtpServer::bind_with(
        "127.0.0.1:0",
        ServerPolicy::catch_all("mx.gmial.com", &["gmial.com".to_owned()]),
        ServerOptions {
            read_timeout,
            telemetry: TelemetryConfig {
                sample_every: 1,
                ring_capacity: 16,
            },
            ..ServerOptions::default()
        },
    )
    .expect("bind smtp");
    let telemetry = ets_obs::serve::serve_with(
        "127.0.0.1:0",
        ets_obs::serve::ServeOptions {
            tick: Duration::from_millis(50),
        },
    )
    .expect("bind telemetry");
    let tele_addr = telemetry.addr().to_string();

    drive_all_five_outcomes(&server.addr().to_string(), read_timeout);

    let (status, _, body) = http_get(&tele_addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    // Handler threads resolve their observers asynchronously and the
    // scrape cache refreshes on a tick, so poll until the full outcome
    // family is visible (bounded by a deadline) rather than racing a
    // fixed sleep.
    let outcome_value = |body: &str, outcome: &str| -> f64 {
        body.lines()
            .find(|l| l.starts_with(&format!("smtp_session_outcome_{outcome} ")))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0.0)
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let smtp_addr = server.addr().to_string();
    let (headers, body) = loop {
        let (status, headers, body) = http_get(&tele_addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        let missing: Vec<&str> = OUTCOMES
            .iter()
            .copied()
            .filter(|o| outcome_value(&body, o) < 1.0)
            .collect();
        if missing.is_empty() {
            break (headers, body);
        }
        assert!(
            std::time::Instant::now() < deadline,
            "outcome family incomplete after 30s (missing {missing:?}):\n{body}"
        );
        // Some rows depend on client-side timing the scheduler can break
        // under parallel-test CPU load (e.g. the chatter client's FIN
        // arriving after the server's read timeout demotes OtherError to
        // Timeout), so re-drive whatever is still missing instead of
        // sleeping and hoping: every assertion is `>= 1`, extra sessions
        // only raise counts.
        for o in missing {
            drive_outcome(&smtp_addr, read_timeout, o);
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(
        headers.contains("text/plain"),
        "missing exposition content type: {headers}"
    );
    assert_exposition_grammar(&body);
    for q in ["0.5", "0.99", "0.999"] {
        assert!(
            body.contains(&format!("smtp_session_us{{quantile=\"{q}\"}}")),
            "missing session latency quantile {q} in:\n{body}"
        );
    }

    let (status, _, body) = http_get(&tele_addr, "/snapshot.json");
    assert!(status.contains("200"), "{status}");
    let snapshot: serde_json::Value = serde_json::from_str(&body).expect("snapshot parses");
    let timeouts = snapshot
        .get("counters")
        .and_then(|c| c.get("smtp.session_outcome.timeout"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    assert!(timeouts >= 1, "snapshot missing timeout outcome:\n{body}");
    let sessions = snapshot
        .get("sections")
        .and_then(|s| s.get("smtp_sessions"))
        .and_then(|r| r.as_array())
        .map_or(0, Vec::len);
    assert!(sessions > 0, "ring empty with sample_every=1:\n{body}");

    let (status, _, _) = http_get(&tele_addr, "/nope");
    assert!(status.contains("404"), "{status}");

    drop(server);
    drop(telemetry);
}
