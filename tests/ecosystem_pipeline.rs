//! Cross-crate Section-5 pipeline: the synthetic world drives the real
//! resolver, scanner, WHOIS clusterer, and concentration analyses.

use ets_dns::Fqdn;
use ets_ecosystem::mxconc::MxConcentration;
use ets_ecosystem::nameserver::NsAnalysis;
use ets_ecosystem::population::{PopulationConfig, World};
use ets_ecosystem::scan::{scan_world, SmtpSupport};
use ets_ecosystem::whois_cluster::{self, WhoisRow};
use std::collections::HashSet;

fn world() -> World {
    World::build(PopulationConfig {
        n_targets: 100,
        ..PopulationConfig::tiny(0x5eed)
    })
}

#[test]
fn census_has_table4_shape() {
    let w = world();
    let census = scan_world(&w);
    assert_eq!(census.total(), w.ctypos.len());
    let email_share = census.supports_email_share();
    assert!(
        email_share > 0.2 && email_share < 0.65,
        "email-capable share {email_share}"
    );
    let no_info = census.percent_total(SmtpSupport::NoInfo);
    assert!(no_info > 20.0 && no_info < 50.0, "no-info {no_info}%");
    // STARTTLS-ok is the largest capable category, as in the paper.
    assert!(
        census.percent_total(SmtpSupport::StarttlsOk)
            >= census.percent_total(SmtpSupport::EmailNoStarttls)
    );
}

#[test]
fn whois_clustering_recovers_bulk_owners() {
    let w = world();
    let rows: Vec<WhoisRow> = w
        .ctypos
        .iter()
        .map(|c| {
            let fq = Fqdn::from_domain(&c.candidate.domain);
            let reg = w.registry.registration(&fq).expect("registered");
            WhoisRow {
                domain: fq,
                whois: reg.public_whois(),
                private: reg.is_private(),
            }
        })
        .collect();
    let clusters = whois_cluster::cluster_registrants(&rows);
    assert!(!clusters.is_empty());
    // The clusterer must find at least one genuinely large portfolio...
    assert!(clusters[0].len() >= 10, "largest {}", clusters[0].len());
    // ...and the recovered top cluster must be ground-truth same-owner.
    let owners: HashSet<Option<usize>> = clusters[0]
        .domains
        .iter()
        .map(|d| {
            let name: ets_core::DomainName = d.to_string().parse().unwrap();
            w.owner_of(&name).map(|r| r.id)
        })
        .collect();
    assert_eq!(owners.len(), 1, "top cluster mixes owners: {owners:?}");
    // Private registrations never appear in any cluster.
    let private: HashSet<&Fqdn> = rows
        .iter()
        .filter(|r| r.private)
        .map(|r| &r.domain)
        .collect();
    for c in &clusters {
        for d in &c.domains {
            assert!(!private.contains(d), "{d} is privacy-proxied");
        }
    }
}

#[test]
fn mx_concentration_vs_ground_truth_providers() {
    let w = world();
    let resolver = w.resolver();
    let domains: Vec<Fqdn> = w
        .ctypos
        .iter()
        .map(|c| Fqdn::from_domain(&c.candidate.domain))
        .collect();
    let conc = MxConcentration::measure(&resolver, domains.iter());
    assert!(conc.total_with_mail > 100);
    // The top measured providers must be Table-6 names from the ground
    // truth provider list.
    let provider_names: HashSet<String> = w.mx_providers.iter().map(|p| p.to_string()).collect();
    let top3: Vec<String> = conc
        .providers
        .iter()
        .take(3)
        .map(|(d, _)| d.to_string())
        .collect();
    let hits = top3.iter().filter(|d| provider_names.contains(*d)).count();
    assert!(hits >= 2, "top-3 measured {top3:?} not in ground truth");
    // Concentration: the curve must bend hard at the head.
    assert!(conc.top_share(11) > 0.3, "top-11 {}", conc.top_share(11));
}

#[test]
fn cesspool_nameservers_stand_out_against_background() {
    let w = world();
    let ctypos: HashSet<Fqdn> = w
        .ctypos
        .iter()
        .map(|c| Fqdn::from_domain(&c.candidate.domain))
        .collect();
    let ns =
        NsAnalysis::run_with_background(&w.registry.zone_file(), &ctypos, &w.ns_customer_base, 10);
    // Average in the low percent range, as for all of .com.
    assert!(
        ns.average_ratio > 0.005 && ns.average_ratio < 0.25,
        "avg {}",
        ns.average_ratio
    );
    // The suspicious tail exists and is dominated by the cesspools.
    let sus = ns.suspicious(5.0);
    assert!(!sus.is_empty());
    assert!(
        sus[0].nameserver.to_string().contains("cheap-dns"),
        "top suspicious {}",
        sus[0].nameserver
    );
    assert!(sus[0].typo_ratio() > 0.3, "ratio {}", sus[0].typo_ratio());
}

#[test]
fn dns_wire_round_trip_through_world_resolver() {
    use ets_dns::record::RecordType;
    use ets_dns::wire::{decode, encode, DnsMessage, Rcode};
    let w = world();
    let resolver = w.resolver();
    // Take a mail-capable ctypo and resolve it at the wire level.
    let target = w
        .ctypos
        .iter()
        .find(|c| c.has_zone)
        .map(|c| Fqdn::from_domain(&c.candidate.domain))
        .expect("a zone-backed ctypo exists");
    let query = DnsMessage::query(99, target.clone(), RecordType::Mx);
    let wire_query = encode(&query);
    let parsed_query = decode(&wire_query).expect("query round-trips");
    let response = resolver.serve(&parsed_query);
    let wire_response = encode(&response);
    let parsed_response = decode(&wire_response).expect("response round-trips");
    assert_eq!(parsed_response, response);
    assert_eq!(parsed_response.id, 99);
    assert!(parsed_response.rcode == Rcode::NoError || parsed_response.answers.is_empty());
}
