//! The Figure-1 collection path over real TCP sockets: DNS-style catch-all
//! policy, SMTP server, client delivery, then the full processing pipeline
//! (extraction → scrubbing → encryption).

use ets_collector::{crypto, extract, scrub};
use ets_mail::MessageBuilder;
use ets_smtp::client::{ClientOutcome, Email};
use ets_smtp::net_client::send_email;
use ets_smtp::server::SmtpServer;
use ets_smtp::session::ServerPolicy;
use std::time::Duration;

fn catch_all_server() -> SmtpServer {
    let policy = ServerPolicy::catch_all("mx.gmial.com", &["gmial.com".to_owned()]);
    SmtpServer::bind("127.0.0.1:0", policy).expect("bind loopback")
}

#[test]
fn typo_email_collected_scrubbed_and_encrypted() {
    let server = catch_all_server();
    let msg = MessageBuilder::new()
        .from("john@business.example")
        .unwrap()
        .to("alice@gmial.com")
        .unwrap()
        .subject("travel docs")
        .date("Mon, 6 Jun 2016 09:00:00 +0000")
        .message_id("<t1@business.example>")
        .body("Amex 371385129301004 Exp 06/03\ncall me at (412) 555-1234")
        .build();
    let outcome = send_email(
        &server.addr().to_string(),
        Email::new(
            Some("john@business.example".parse().unwrap()),
            vec!["alice@gmial.com".parse().unwrap()],
            msg.to_wire(),
        ),
        "mail-out.business.example",
        true,
        Duration::from_secs(5),
    )
    .expect("delivery succeeds");
    assert_eq!(outcome, ClientOutcome::Accepted);

    let received = server.shutdown();
    assert_eq!(received.len(), 1);
    assert!(received[0].tls, "opportunistic STARTTLS must engage");
    let parsed = ets_mail::Message::parse(&received[0].data).unwrap();

    // Pipeline: scrub, verify the card is gone and flagged.
    let scrubbed = scrub::scrub(&parsed.body);
    assert!(scrubbed.has(scrub::SensitiveKind::CreditCard));
    assert!(scrubbed.has(scrub::SensitiveKind::Phone));
    assert!(!scrubbed.text.contains("371385129301004"));
    assert!(scrubbed.text.contains("americanexpress"));

    // Encrypt at rest and recover with the offline key.
    let key: crypto::Key = [7u8; 32];
    let sealed = crypto::seal(&key, 99, scrubbed.text.as_bytes());
    assert_ne!(sealed.ciphertext, scrubbed.text.as_bytes());
    assert_eq!(
        crypto::open(&key, &sealed).unwrap(),
        scrubbed.text.as_bytes()
    );
}

#[test]
fn attachment_text_is_extracted_and_scrubbed_over_tcp() {
    let server = catch_all_server();
    let msg = MessageBuilder::new()
        .from("hr@company.example")
        .unwrap()
        .to("candidate@gmial.com")
        .unwrap()
        .subject("offer details")
        .date("x")
        .message_id("<t2@company.example>")
        .body("details attached")
        .attach(
            "offer.pdf",
            "application/pdf",
            extract::build::pdf("offer.pdf", "SSN 078-05-1120 salary details").data,
        )
        .build();
    let outcome = send_email(
        &server.addr().to_string(),
        Email::new(
            Some("hr@company.example".parse().unwrap()),
            vec!["candidate@gmial.com".parse().unwrap()],
            msg.to_wire(),
        ),
        "mail.company.example",
        false,
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(outcome, ClientOutcome::Accepted);
    let received = server.shutdown();
    let parsed = ets_mail::Message::parse(&received[0].data).unwrap();
    assert_eq!(parsed.attachments.len(), 1);
    let full = extract::full_text(&parsed);
    let scrubbed = scrub::scrub(&full);
    assert!(
        scrubbed.has(scrub::SensitiveKind::Ssn),
        "SSN inside the PDF must be found"
    );
}

#[test]
fn foreign_recipient_rejected_over_tcp() {
    let server = catch_all_server();
    let outcome = send_email(
        &server.addr().to_string(),
        Email::new(
            None,
            vec!["victim@gmail.com".parse().unwrap()], // real gmail, not ours
            "Subject: x\r\n\r\nrelay attempt".to_owned(),
        ),
        "relay-abuser.example",
        false,
        Duration::from_secs(5),
    )
    .unwrap();
    assert!(
        matches!(outcome, ClientOutcome::Rejected { code: 550, .. }),
        "{outcome:?}"
    );
    assert!(server.shutdown().is_empty(), "nothing must be accepted");
}
