//! Cross-crate Section-7 pipeline: world → probe campaign (through the
//! real SMTP state machines) → honey-token campaign → monitoring.

use ets_ecosystem::population::{PopulationConfig, SmtpProfile, World};
use ets_honeypot::behavior::BehaviorModel;
use ets_honeypot::campaign::{HoneyCampaign, ProbeCampaign};
use ets_honeypot::design::{self, HoneyDesign};
use ets_smtp::fault::DeliveryOutcome;

fn world() -> World {
    World::build(PopulationConfig::tiny(0x40e7))
}

#[test]
fn probe_campaign_covers_table5() {
    let w = world();
    let probe = ProbeCampaign::new(&w, BehaviorModel::default()).run();
    assert_eq!(probe.total(), w.ctypos.len());
    // Every Table-5 row label present.
    let rows = probe.table5_rows();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0].0, "No error");
    assert_eq!(rows[3].0, "Network Error");
    // Acceptance matches ground truth: every accepted domain's profile is
    // an accepting one.
    for d in probe.accepted.iter().take(100) {
        let smtp = w.smtp_profile(d).expect("known ctypo");
        assert!(
            matches!(smtp, SmtpProfile::StarttlsOk | SmtpProfile::PlainOnly),
            "{d} accepted with profile {smtp:?}"
        );
    }
}

#[test]
fn probe_outcomes_deterministic_and_profile_faithful() {
    let w = world();
    let campaign = ProbeCampaign::new(&w, BehaviorModel::default());
    let a = campaign.run();
    let b = campaign.run();
    assert_eq!(a.outcomes, b.outcomes);
    // Bounce-profile hosts bounce; timeout hosts time out — through the
    // real client/server exchange, not a table lookup.
    let d: ets_core::DomainName = "probe-target.com".parse().unwrap();
    assert_eq!(
        campaign.probe_one(&d, SmtpProfile::BounceAll),
        DeliveryOutcome::Bounce
    );
    assert_eq!(
        campaign.probe_one(&d, SmtpProfile::SilentTimeout),
        DeliveryOutcome::Timeout
    );
}

#[test]
fn honey_emails_deliver_through_real_smtp() {
    // A honey email must survive an actual SMTP transaction with a
    // catch-all server: wire format, dot-stuffing, DOCX attachment.
    use ets_smtp::client::Email;
    use ets_smtp::pipe;
    use ets_smtp::session::ServerPolicy;
    let domain: ets_core::DomainName = "outfook.com".parse().unwrap();
    let honey = design::build(HoneyDesign::PaymentDocx, &domain, 42);
    let rcpt = honey.message.to_addr().expect("honey email has To");
    let email = Email::new(
        Some("sender@plausible-sender.example".parse().unwrap()),
        vec![rcpt],
        honey.message.to_wire(),
    );
    let policy = ServerPolicy::catch_all("mx.outfook.com", &["outfook.com".to_owned()]);
    let result = pipe::deliver(email, "mail.plausible-sender.example", true, policy).unwrap();
    assert_eq!(result.delivery_outcome(), DeliveryOutcome::NoError);
    let received = ets_mail::Message::parse(&result.received[0].data).unwrap();
    assert_eq!(received.attachments.len(), 1);
    assert_eq!(received.attachments[0].extension().as_deref(), Some("docx"));
    // The beacon URL survives transport intact.
    let text = String::from_utf8_lossy(&received.attachments[0].data);
    assert!(text.contains("cdn-metrics.example/doc/42.png"));
}

#[test]
fn full_campaign_signal_is_sparse_slow_and_human() {
    let w = world();
    let behavior = BehaviorModel {
        curious_share: 0.05, // raised so the tiny world yields a signal
        ..BehaviorModel::default()
    };
    let probe = ProbeCampaign::new(&w, behavior.clone()).run();
    assert!(!probe.accepted.is_empty());
    let campaign = HoneyCampaign::new(&w, behavior);
    let report = campaign.run(&probe.accepted);
    let s = report.monitor.summary();
    // Sparse: most honey emails are never touched.
    assert!(
        s.opens * 3 < report.sent,
        "opens {} of {}",
        s.opens,
        report.sent
    );
    // When opened, the pace is human (hours, not milliseconds).
    if s.domains_read > 0 {
        assert!(
            s.median_open_delay_hours >= 0.5,
            "median delay {}",
            s.median_open_delay_hours
        );
    }
    // Token accesses are rarer than opens.
    assert!(s.token_accesses <= s.opens);
}

#[test]
fn registrant_granularity_not_domain() {
    // All domains of one registrant behave identically: if any domain of
    // an owner reads, its sibling domains (same behaviour draw) are the
    // only other candidates to read.
    let w = world();
    let behavior = BehaviorModel {
        curious_share: 0.08,
        ..BehaviorModel::default()
    };
    let probe = ProbeCampaign::new(&w, behavior.clone()).run();
    let campaign = HoneyCampaign::new(&w, behavior.clone());
    let report = campaign.run(&probe.accepted);
    use std::collections::HashSet;
    let reading_owners: HashSet<Option<usize>> = report
        .monitor
        .events()
        .iter()
        .map(|e| w.owner_of(&e.domain).map(|r| r.id))
        .collect();
    for id in reading_owners.iter().flatten() {
        let key = format!("cluster:{id}");
        assert!(
            behavior.behavior_for(&key).open_prob > 0.0,
            "owner {id} read but is dormant"
        );
    }
}
