//! Equivalence properties for the byte-level typo engine, the two-row
//! distance kernels, and the reverse DL-1 index: each optimized path must
//! agree *exactly* (bitwise, for the f64 metrics) with the legacy
//! reference implementation it replaced, on arbitrary inputs.

use ets_core::typogen::{self, TypoTable};
use ets_core::{distance, DomainName, ReverseDl1Index};
use proptest::prelude::*;

/// Arbitrary valid SLDs: no hyphen at either edge, length 1–14.
fn sld() -> impl Strategy<Value = String> {
    "[a-z0-9-]{1,14}".prop_filter("no hyphen edges", |s| {
        !s.starts_with('-') && !s.ends_with('-')
    })
}

fn domain(sld: &str, tld: &str) -> DomainName {
    format!("{sld}.{tld}")
        .parse()
        .expect("strategy yields valid slds")
}

proptest! {
    /// The byte-level table engine emits exactly the legacy generator's
    /// candidate list: same domains, kinds, positions, fat-finger flags,
    /// and bitwise-identical visual scores, in the same order.
    #[test]
    fn table_engine_matches_legacy(s in sld()) {
        let target = domain(&s, "com");
        let legacy = typogen::generate_dl1_legacy(&target);
        let new = typogen::generate_dl1(&target);
        prop_assert_eq!(legacy.len(), new.len());
        for (l, n) in legacy.iter().zip(&new) {
            prop_assert_eq!(&l.domain, &n.domain);
            prop_assert_eq!(l.kind, n.kind);
            prop_assert_eq!(l.position, n.position);
            prop_assert_eq!(l.fat_finger, n.fat_finger);
            prop_assert_eq!(l.visual.to_bits(), n.visual.to_bits());
        }
    }

    /// `classify_dl1` recovers every generated candidate's full record and
    /// rejects the target itself.
    #[test]
    fn classify_roundtrips_generated(s in sld()) {
        let target = domain(&s, "net");
        for cand in typogen::generate_dl1(&target) {
            let got = typogen::classify_dl1(&target, &cand.domain);
            prop_assert_eq!(got.as_ref(), Some(&cand));
        }
        prop_assert!(typogen::classify_dl1(&target, &target).is_none());
    }

    /// The two-row DL kernel (with affix trimming) agrees with the legacy
    /// full-matrix kernel — including on small alphabets, where the
    /// repeated characters exercise the transposition-across-trim cases.
    #[test]
    fn dl_matches_legacy(a in sld(), b in sld(), x in "[ab]{0,6}", y in "[ab]{0,6}") {
        prop_assert_eq!(
            distance::damerau_levenshtein(&a, &b),
            distance::damerau_levenshtein_legacy(&a, &b)
        );
        prop_assert_eq!(
            distance::damerau_levenshtein(&x, &y),
            distance::damerau_levenshtein_legacy(&x, &y)
        );
    }

    /// The two-row fat-finger kernel agrees with the legacy matrix.
    #[test]
    fn fat_finger_matches_legacy(a in sld(), b in sld()) {
        prop_assert_eq!(
            distance::fat_finger(&a, &b),
            distance::fat_finger_legacy(&a, &b)
        );
        prop_assert_eq!(
            distance::is_ff1(&a, &b),
            distance::fat_finger_legacy(&a, &b) == Some(1)
        );
    }

    /// The rolling-row visual kernel is bitwise-identical to the legacy
    /// matrix implementation.
    #[test]
    fn visual_matches_legacy_bitwise(a in sld(), b in sld()) {
        prop_assert_eq!(
            distance::visual(&a, &b).to_bits(),
            distance::visual_legacy(&a, &b).to_bits()
        );
    }

    /// The reverse index returns exactly the brute-force scan's target
    /// set for arbitrary queries over an arbitrary target list.
    #[test]
    fn revindex_matches_brute_force(
        slds in proptest::collection::vec(sld(), 1..8),
        q in sld(),
    ) {
        let mut slds = slds;
        slds.dedup();
        let targets: Vec<DomainName> = slds.iter().map(|s| domain(s, "com")).collect();
        let index = ReverseDl1Index::build(&targets);
        let query = domain(&q, "com");
        let brute: Vec<usize> = targets
            .iter()
            .enumerate()
            .filter(|(_, t)| distance::damerau_levenshtein(t.sld(), query.sld()) == 1)
            .map(|(k, _)| k)
            .collect();
        prop_assert_eq!(index.matches(&query), brute.clone());
        prop_assert_eq!(index.is_typo(&query), !brute.is_empty());
    }
}

/// Reference adjacency via the public row-geometry scan ([`key_pos`]),
/// independent of the const table.
fn adjacent_by_scan(a: char, b: char) -> bool {
    use ets_core::keyboard::key_pos;
    let (Some(pa), Some(pb)) = (key_pos(a), key_pos(b)) else {
        return false;
    };
    if pa.row == pb.row {
        return pa.col.abs_diff(pb.col) == 1;
    }
    if pa.row.abs_diff(pb.row) != 1 {
        return false;
    }
    let (upper, lower) = if pa.row < pb.row { (pa, pb) } else { (pb, pa) };
    lower.col == upper.col || lower.col + 1 == upper.col
}

/// Table-driven equivalence of the const keyboard/confusability tables
/// against their scan-based definitions, over the whole ASCII range.
#[test]
fn const_tables_match_scans() {
    for a in 0u8..128 {
        for b in 0u8..128 {
            assert_eq!(
                ets_core::keyboard::ADJACENCY[a as usize][b as usize],
                adjacent_by_scan(a as char, b as char),
                "adjacency {a} vs {b}"
            );
            assert_eq!(
                distance::CONFUSABILITY[a as usize][b as usize].to_bits(),
                distance::char_confusability_legacy(a as char, b as char).to_bits(),
                "confusability {a} vs {b}"
            );
        }
    }
}

/// The tables' symmetry, spot-checked at runtime too (the build asserts
/// it at compile time).
#[test]
fn adjacency_table_symmetric() {
    for a in 0usize..128 {
        for b in 0usize..128 {
            assert_eq!(
                ets_core::keyboard::ADJACENCY[a][b],
                ets_core::keyboard::ADJACENCY[b][a]
            );
        }
    }
}

/// The reverse index explains a query exactly as searching each target's
/// generated candidate list would.
#[test]
fn explain_equals_generator_search() {
    let targets: Vec<DomainName> = ["gmail.com", "gmal.com", "outlook.com", "a.com"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let index = ReverseDl1Index::build(&targets);
    for t in &targets {
        for cand in typogen::generate_dl1(t) {
            let explained = index.explain(&cand.domain);
            let expected: Vec<_> = targets
                .iter()
                .filter_map(|x| {
                    typogen::generate_dl1(x)
                        .into_iter()
                        .find(|c| c.domain == cand.domain)
                })
                .collect();
            assert_eq!(explained, expected, "query {}", cand.domain);
        }
    }
}

/// The table's column accessors agree with the records it materializes.
#[test]
fn table_columns_agree_with_candidates() {
    let target: DomainName = "hotmail.com".parse().unwrap();
    let table = TypoTable::generate(&target);
    let cands = typogen::generate_dl1(&target);
    assert_eq!(table.len(), cands.len());
    for (i, c) in cands.iter().enumerate() {
        assert_eq!(table.sld(i), c.domain.sld());
        assert_eq!(table.kind(i), c.kind);
        assert_eq!(table.position(i), c.position);
        assert_eq!(table.fat_finger(i), c.fat_finger);
        assert_eq!(table.visual(i).to_bits(), c.visual.to_bits());
        assert_eq!(table.candidate(i), *c);
    }
}
