//! End-to-end Section-4 pipeline: infrastructure → traffic → funnel →
//! analysis, asserting the paper's qualitative findings hold.

use ets_collector::analysis::StudyAnalysis;
use ets_collector::funnel::{Funnel, FunnelVerdict};
use ets_collector::infra::CollectionInfra;
use ets_collector::traffic::{TrafficConfig, TrafficGenerator, TrueKind};

struct Study {
    infra: CollectionInfra,
    emails: Vec<ets_collector::traffic::GenEmail>,
    collected: Vec<ets_collector::infra::CollectedEmail>,
    verdicts: Vec<FunnelVerdict>,
    spam_scale: f64,
}

fn run_study(seed: u64) -> Study {
    let infra = CollectionInfra::build();
    let config = TrafficConfig {
        seed,
        spam_scale: 1.0 / 20_000.0,
        ..TrafficConfig::default()
    };
    let spam_scale = config.spam_scale;
    let emails = TrafficGenerator::new(&infra, config).generate();
    let collected: Vec<_> = emails.iter().map(|e| e.collected.clone()).collect();
    let verdicts = Funnel::new(&infra).classify_all(&collected);
    Study {
        infra,
        emails,
        collected,
        verdicts,
        spam_scale,
    }
}

#[test]
fn headline_volumes_track_the_paper() {
    let s = run_study(0xE2E);
    let analysis = StudyAnalysis::new(&s.infra, &s.collected, &s.verdicts, s.spam_scale);
    let v = analysis.volumes();
    // Total in the paper's order of magnitude once spam is scaled back.
    assert!(v.total > 5.0e7 && v.total < 3.0e8, "total {}", v.total);
    // SMTP candidates dominate raw volume.
    assert!(v.smtp_candidates > v.receiver_candidates * 2.0);
    // Post-funnel survivors in the paper's range (thousands, not millions).
    assert!(
        v.pass_funnel > 3_000.0 && v.pass_funnel < 20_000.0,
        "pass {}",
        v.pass_funnel
    );
    assert!(
        v.receiver_reflection > 3_000.0 && v.receiver_reflection < 12_000.0,
        "recv+refl {}",
        v.receiver_reflection
    );
    // SMTP typos an order of magnitude below receiver typos; the range's
    // upper bound includes the frequency-filtered automated agents.
    assert!(v.smtp_range.0 < v.receiver_reflection / 4.0);
    assert!(v.smtp_range.1 > v.smtp_range.0, "{:?}", v.smtp_range);
    // The mystery receiver typos on SMTP-purpose domains (paper ≈700/yr).
    assert!(
        v.mystery_receiver > 300.0 && v.mystery_receiver < 1_500.0,
        "mystery {}",
        v.mystery_receiver
    );
}

#[test]
fn funnel_confusion_on_ground_truth() {
    let s = run_study(0xC0F);
    let mut spam_as_typo = 0usize;
    let mut spam_total = 0usize;
    let mut typo_as_spam = 0usize;
    let mut typo_total = 0usize;
    for (e, v) in s.emails.iter().zip(&s.verdicts) {
        match e.truth {
            TrueKind::Spam => {
                spam_total += 1;
                if v.is_true_typo() {
                    spam_as_typo += 1;
                }
            }
            TrueKind::Receiver | TrueKind::SmtpTypo => {
                typo_total += 1;
                if v.is_spam() {
                    typo_as_spam += 1;
                }
            }
            TrueKind::Reflection => {}
        }
    }
    // Spam leakage into the true-typo classes must be rare (the paper's
    // manual check put survivor precision at ~80%).
    assert!(
        (spam_as_typo as f64) < spam_total as f64 * 0.05,
        "{spam_as_typo}/{spam_total} spam leaked"
    );
    // And true typos are not wholesale eaten by the spam layers.
    assert!(
        (typo_as_spam as f64) < typo_total as f64 * 0.15,
        "{typo_as_spam}/{typo_total} typos eaten"
    );
}

#[test]
fn figure5_shape_two_domains_take_most() {
    let s = run_study(0xF16);
    let analysis = StudyAnalysis::new(&s.infra, &s.collected, &s.verdicts, s.spam_scale);
    let rows = analysis.figure5();
    assert_eq!(rows.len(), 27);
    assert!(rows[1].2 > 0.45, "top-2 cumulative {}", rows[1].2);
    assert!(rows[11].2 > 0.92, "top-12 cumulative {}", rows[11].2);
    // Ordered by count.
    for w in rows.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
}

#[test]
fn attachments_and_sensitive_info_follow_the_paper() {
    let s = run_study(0xA77);
    let analysis = StudyAnalysis::new(&s.infra, &s.collected, &s.verdicts, s.spam_scale);
    // Figure 7: pdf dominates; no archives survive the funnel.
    let exts = analysis.figure7();
    assert_eq!(exts[0].0, "pdf", "{exts:?}");
    assert!(exts.iter().all(|(e, _)| e != "zip" && e != "rar"));
    // Figure 6: credentials land on the disposable-address typo domain.
    let heat = analysis.figure6();
    let creds: usize = heat
        .iter()
        .filter(|((d, k), _)| d.as_str() == "yopail.com" && (k == "username" || k == "password"))
        .map(|(_, &c)| c)
        .sum();
    assert!(creds > 0, "no credentials on yopail.com: {heat:?}");
}

#[test]
fn smtp_persistence_shape() {
    let s = run_study(0x9E5);
    let analysis = StudyAnalysis::new(&s.infra, &s.collected, &s.verdicts, s.spam_scale);
    let p = analysis.smtp_persistence();
    assert!(p.users > 50);
    assert!(p.single_email > 0.5 && p.single_email < 0.9);
    assert!(p.under_one_week > p.under_one_day);
    assert!(p.max_days <= 209);
}

#[test]
fn determinism_across_runs() {
    let a = run_study(0xD0D);
    let b = run_study(0xD0D);
    assert_eq!(a.emails.len(), b.emails.len());
    assert_eq!(a.verdicts, b.verdicts);
}
