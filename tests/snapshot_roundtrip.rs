//! World-snapshot persistence: round-trip byte-identity and corruption
//! resilience.
//!
//! The contract under test: a world loaded from a snapshot is
//! **byte-identical** to the world that wrote it (same ctypos, same
//! registrations and zones, same downstream analysis outputs), at any
//! thread count — and *no* damaged, stale, or mismatched snapshot ever
//! panics or silently loads: every rejection is a typed error the caller
//! can log before rebuilding fresh.

use ets_dns::Fqdn;
use ets_ecosystem::population::{PopulationConfig, World};
use ets_ecosystem::snapshot::{self, LoadError, WORLD_FORMAT_VERSION};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// `set_threads` is process-global; tests that touch it must not
/// interleave.
static LOCK: Mutex<()> = Mutex::new(());

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ets-snapshot-test-{}-{tag}.ets",
        std::process::id()
    ))
}

/// Everything downstream analyses can observe about a world.
fn fingerprint(w: &World) -> String {
    let mut regs = String::new();
    for c in &w.ctypos {
        let fq = Fqdn::from_domain(&c.candidate.domain);
        let r = w.registry.registration(&fq).expect("ctypo registered");
        regs.push_str(&format!("{r:?}\n"));
        if let Some(z) = w.registry.zone(&fq) {
            regs.push_str(&format!("{z:?}\n"));
        }
    }
    format!(
        "{}\n{}\n{:?}\n{regs}",
        serde_json::to_string(&w.ctypos).expect("serializable"),
        serde_json::to_string(&w.registrants).expect("serializable"),
        w.ns_customer_base,
    )
}

/// A valid snapshot's raw bytes plus its config and fingerprint, built
/// once and shared by the corruption properties.
fn reference() -> &'static (Vec<u8>, PopulationConfig, String) {
    static REF: OnceLock<(Vec<u8>, PopulationConfig, String)> = OnceLock::new();
    REF.get_or_init(|| {
        let config = PopulationConfig::tiny(20170401);
        let world = World::build(config.clone());
        let path = temp_path("reference");
        snapshot::save(&world, &path).expect("save");
        let bytes = std::fs::read(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        (bytes, config, fingerprint(&world))
    })
}

#[test]
fn roundtrip_is_byte_identical_across_seeds() {
    for seed in [1, 7, 20161105] {
        let config = PopulationConfig::tiny(seed);
        let world = World::build(config.clone());
        let path = temp_path(&format!("seed{seed}"));
        snapshot::save(&world, &path).expect("save");
        let loaded = snapshot::load(&path, &config).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(fingerprint(&loaded), fingerprint(&world), "seed {seed}");
    }
}

#[test]
fn roundtrip_is_thread_invariant() {
    // A snapshot written by a single-threaded build must load to the
    // identical world at any worker count (and vice versa): the load
    // path fans out materialization over the pool too.
    let _guard = LOCK.lock().unwrap();
    let config = PopulationConfig::tiny(99);
    ets_parallel::set_threads(1);
    let world = World::build(config.clone());
    let reference = fingerprint(&world);
    let path = temp_path("threads");
    snapshot::save(&world, &path).expect("save");
    for threads in [1, 2, 8] {
        ets_parallel::set_threads(threads);
        let loaded = snapshot::load(&path, &config).expect("load");
        assert_eq!(
            fingerprint(&loaded),
            reference,
            "load at {threads} threads diverged"
        );
    }
    ets_parallel::set_threads(0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mismatched_config_is_rejected() {
    let (bytes, _, _) = reference();
    let path = temp_path("config-mismatch");
    std::fs::write(&path, bytes).expect("write");
    // Same shape, different seed — a snapshot must never satisfy it.
    let other = PopulationConfig::tiny(999);
    let err = snapshot::load(&path, &other).expect_err("must reject");
    let _ = std::fs::remove_file(&path);
    assert!(
        matches!(err, LoadError::ConfigMismatch),
        "expected ConfigMismatch, got: {err}"
    );
}

#[test]
fn stale_format_version_is_rejected() {
    let (_, config, _) = reference();
    let meta = serde_json::to_string(config).expect("serializable");
    let writer = ets_store::SnapshotWriter::new(WORLD_FORMAT_VERSION + 1, meta.as_bytes());
    let path = temp_path("stale-version");
    writer.write_to(&path).expect("write");
    let err = snapshot::load(&path, config).expect_err("must reject");
    let _ = std::fs::remove_file(&path);
    match err {
        LoadError::FormatVersion { found, expected } => {
            assert_eq!(found, WORLD_FORMAT_VERSION + 1);
            assert_eq!(expected, WORLD_FORMAT_VERSION);
        }
        other => panic!("expected FormatVersion, got: {other}"),
    }
}

#[test]
fn rejected_snapshot_still_rebuilds_cleanly() {
    // The caller's fallback after any load error is a fresh build; it
    // must produce the exact world the snapshot would have.
    let (bytes, config, reference_fp) = reference();
    let path = temp_path("fallback");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("write truncated");
    assert!(snapshot::load(&path, config).is_err());
    let _ = std::fs::remove_file(&path);
    let rebuilt = World::build(config.clone());
    assert_eq!(&fingerprint(&rebuilt), reference_fp);
}

proptest! {
    /// Any single flipped byte is detected: the load returns an error —
    /// never a panic, never a silently different world.
    #[test]
    fn flipped_byte_never_loads(pos_frac in 0.0f64..1.0, bit in 0u32..8) {
        let (bytes, config, _) = reference();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        let path = temp_path(&format!("flip{pos}-{bit}"));
        std::fs::write(&path, &corrupt).expect("write");
        let result = snapshot::load(&path, config);
        let _ = std::fs::remove_file(&path);
        prop_assert!(
            result.is_err(),
            "flipping bit {} of byte {} went undetected", bit, pos
        );
    }

    /// Any truncation is detected, including cuts inside the header,
    /// the TOC, a section payload, or the checksum trailer.
    #[test]
    fn truncated_file_never_loads(len_frac in 0.0f64..1.0) {
        let (bytes, config, _) = reference();
        let len = ((bytes.len() - 1) as f64 * len_frac) as usize;
        let path = temp_path(&format!("trunc{len}"));
        std::fs::write(&path, &bytes[..len]).expect("write");
        let result = snapshot::load(&path, config);
        let _ = std::fs::remove_file(&path);
        prop_assert!(result.is_err(), "truncation to {} bytes went undetected", len);
    }
}
