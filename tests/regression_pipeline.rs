//! Cross-crate Section-6 pipeline: train the projection regression on the
//! simulated collection, apply it to the ecosystem's ctypos, and check
//! the paper's qualitative conclusions.

use ets_collector::funnel::{Funnel, FunnelVerdict};
use ets_collector::infra::CollectionInfra;
use ets_collector::traffic::{TrafficConfig, TrafficGenerator};
use ets_core::regress::{cost_per_email, Observation, ProjectionModel};
use ets_core::typogen::TypoCandidate;
use ets_ecosystem::population::{PopulationConfig, World};
use std::collections::HashMap;

const SEEDS: [(&str, usize); 5] = [
    ("gmail.com", 1),
    ("hotmail.com", 2),
    ("outlook.com", 3),
    ("comcast.com", 6),
    ("verizon.com", 7),
];

fn observations(seed: u64) -> Vec<Observation> {
    let infra = CollectionInfra::build();
    let config = TrafficConfig {
        seed,
        spam_scale: 1.0 / 50_000.0,
        ..TrafficConfig::default()
    };
    let emails: Vec<_> = TrafficGenerator::new(&infra, config)
        .generate()
        .into_iter()
        .map(|e| e.collected)
        .collect();
    let verdicts = Funnel::new(&infra).classify_all(&emails);
    let mut yearly: HashMap<ets_core::DomainName, f64> = HashMap::new();
    for (e, v) in emails.iter().zip(&verdicts) {
        if matches!(v, FunnelVerdict::ReceiverTypo | FunnelVerdict::Reflection) {
            let days = infra.collection_days[&e.domain] as f64;
            *yearly.entry(e.domain.clone()).or_insert(0.0) += 365.0 / days;
        }
    }
    infra
        .domains
        .iter()
        .filter(|d| {
            matches!(d.purpose, ets_core::taxonomy::CollectionPurpose::Provider)
                && SEEDS.iter().any(|(t, _)| *t == d.candidate.target.as_str())
        })
        .map(|d| Observation {
            candidate: d.candidate.clone(),
            target_rank: SEEDS
                .iter()
                .find(|(t, _)| *t == d.candidate.target.as_str())
                .unwrap()
                .1,
            yearly_emails: yearly.get(d.domain()).copied().unwrap_or(0.0),
        })
        .collect()
}

#[test]
fn regression_fits_with_meaningful_r2() {
    let obs = observations(0x6e6);
    assert_eq!(
        obs.len(),
        25,
        "provider typos of the 5 seed targets: {}",
        obs.len()
    );
    let model = ProjectionModel::fit(&obs).expect("fits");
    assert!(
        model.r_squared > 0.4,
        "R² {} too weak to be the paper's model",
        model.r_squared
    );
    assert!(model.loocv_r_squared <= model.r_squared);
}

#[test]
fn projection_over_ecosystem_is_paper_magnitude() {
    let obs = observations(0x6e7);
    let model = ProjectionModel::fit(&obs).expect("fits");
    let world = World::build(PopulationConfig {
        n_targets: 100,
        ..PopulationConfig::tiny(0x717)
    });
    let aliases = [
        "gmail.com",
        "hotmail.com",
        "outlook.com",
        "comcast.net",
        "verizon.net",
    ];
    let population: Vec<(TypoCandidate, usize)> = world
        .ctypos
        .iter()
        .filter(|c| c.class != ets_core::taxonomy::DomainClass::Defensive)
        .filter(|c| aliases.contains(&c.candidate.target.as_str()))
        .map(|c| {
            let rank = match c.candidate.target.as_str() {
                "gmail.com" => 1,
                "hotmail.com" => 2,
                "outlook.com" => 3,
                "comcast.net" => 6,
                _ => 7,
            };
            (c.candidate.clone(), rank)
        })
        .collect();
    assert!(population.len() > 200, "population {}", population.len());
    let projection = model.project_total(&population, 0.95);
    // Paper: hundreds of thousands per year for 1,211 domains → tens of
    // thousands per year at our population scale; the point is orders of
    // magnitude above the study's own 76 domains and far below raw spam.
    assert!(
        projection.expected > 5_000.0 && projection.expected < 5_000_000.0,
        "projection {}",
        projection.expected
    );
    assert!(projection.interval.lo < projection.expected);
    assert!(projection.interval.hi > projection.expected);
    // Economics: cents per email, not dollars (§6.2).
    let cost = cost_per_email(population.len(), projection.expected, 8.5);
    assert!(cost < 0.5, "cost {cost} per email");
}

#[test]
fn popular_targets_dominate_projection() {
    let obs = observations(0x6e8);
    let model = ProjectionModel::fit(&obs).expect("fits");
    // Same candidate, different claimed rank: rank 1 must predict more.
    let cand = obs
        .iter()
        .find(|o| o.candidate.target.as_str() == "outlook.com")
        .map(|o| o.candidate.clone())
        .expect("outlook typo in training set");
    assert!(model.predict(&cand, 1) >= model.predict(&cand, 1_000));
}
