//! Streaming-vs-batch differential suite.
//!
//! The streaming pipeline (`ets_collector::stream`) claims byte-identical
//! output to the batch collect-then-classify oracle at any thread count,
//! any channel depth, and any epoch grouping — plus bounded in-flight
//! payload memory. This suite holds each claim against the oracle:
//!
//! * full email + verdict equality across a thread {1, 2, 8} × channel
//!   depth {1, 1024} sweep;
//! * a proptest that absorbs the corpus in arbitrary epoch groupings and
//!   demands the verdicts never move;
//! * a peak-memory assertion: with a discarding sink, the in-flight
//!   payload bound stays far below the materialized corpus size.
//!
//! Thread count, channel depth, and the mem gauge are process-global, so
//! every test serializes on one file-local lock and restores defaults.

use ets_collector::funnel::{Funnel, FunnelVerdict};
use ets_collector::infra::{CollectedEmail, CollectionInfra};
use ets_collector::stream::{stream_collect, StreamFunnel};
use ets_collector::traffic::{GenEmail, TrafficConfig, TrafficGenerator};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that touch the process-global thread count, channel
/// depth, or mem gauge.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Restores the global knobs this suite turns.
fn restore_defaults() {
    ets_parallel::set_threads(0);
    ets_parallel::set_stream_depth(0);
}

/// The shared oracle: one batch run of the generator and funnel at test
/// scale. Built once — the corpus and verdicts are deterministic, so
/// every test compares against the same baseline.
fn oracle() -> &'static (CollectionInfra, Vec<CollectedEmail>, Vec<FunnelVerdict>) {
    static ORACLE: OnceLock<(CollectionInfra, Vec<CollectedEmail>, Vec<FunnelVerdict>)> =
        OnceLock::new();
    ORACLE.get_or_init(|| {
        let infra = CollectionInfra::build();
        let collected: Vec<CollectedEmail> =
            TrafficGenerator::new(&infra, TrafficConfig::test_scale(77))
                .generate()
                .into_iter()
                .map(|e| e.collected)
                .collect();
        let verdicts = Funnel::new(&infra).classify_all(&collected);
        (infra, collected, verdicts)
    })
}

#[test]
fn stream_equals_batch_across_threads_and_depths() {
    let _g = lock();
    let (infra, batch_emails, batch_verdicts) = oracle();
    for threads in [1usize, 2, 8] {
        for depth in [1usize, 1024] {
            ets_parallel::set_threads(threads);
            ets_parallel::set_stream_depth(depth);
            let gen = TrafficGenerator::new(infra, TrafficConfig::test_scale(77));
            let funnel = Funnel::new(infra);
            let mut streamed: Vec<CollectedEmail> = Vec::new();
            let mut sink = |e: GenEmail| streamed.push(e.collected);
            let state = stream_collect(&gen, &funnel, &mut sink);
            let verdicts = state.finish();
            assert_eq!(
                &streamed, batch_emails,
                "emails diverged at threads={threads} depth={depth}"
            );
            assert_eq!(
                &verdicts, batch_verdicts,
                "verdicts diverged at threads={threads} depth={depth}"
            );
        }
    }
    restore_defaults();
}

#[test]
fn in_flight_memory_stays_bounded() {
    let _g = lock();
    let (infra, batch_emails, _) = oracle();
    let corpus_bytes: u64 = batch_emails.iter().map(|e| e.approx_heap_bytes()).sum();
    assert!(corpus_bytes > 0);
    ets_parallel::set_threads(2);
    ets_parallel::set_stream_depth(1);
    ets_obs::mem::reset();
    let gen = TrafficGenerator::new(infra, TrafficConfig::test_scale(77));
    let funnel = Funnel::new(infra);
    // Discarding sink: nothing downstream retains the emails, so the mem
    // gauge sees only what the pipeline itself keeps in flight.
    let mut sink = |_e: GenEmail| {};
    let state = stream_collect(&gen, &funnel, &mut sink);
    assert_eq!(state.emails(), batch_emails.len());
    let peak = ets_obs::mem::peak();
    assert!(peak > 0, "workers never registered payload bytes");
    assert!(
        peak < corpus_bytes / 4,
        "peak in-flight {peak} not bounded vs corpus {corpus_bytes}"
    );
    assert_eq!(ets_obs::mem::live(), 0, "commit leaked payload bytes");
    restore_defaults();
}

proptest! {
    /// Absorbing the corpus in any epoch grouping — single emails, uneven
    /// chunks, one big batch — yields the oracle's verdicts exactly: the
    /// funnel's cross-email state is a pure commutative merge.
    #[test]
    fn epoch_grouping_never_changes_verdicts(
        raw_cuts in proptest::collection::vec(0..2000usize, 0..12),
    ) {
        let _g = lock();
        restore_defaults();
        let (infra, batch_emails, batch_verdicts) = oracle();
        let funnel = Funnel::new(infra);
        let n = batch_emails.len();
        let mut cuts = raw_cuts;
        cuts.iter_mut().for_each(|c| *c %= n + 1);
        cuts.sort_unstable();
        cuts.dedup();
        let mut state = StreamFunnel::new(&funnel);
        let mut prev = 0usize;
        for cut in cuts.into_iter().chain(std::iter::once(n)) {
            if cut > prev {
                state.absorb(funnel.feature_batch(batch_emails[prev..cut].iter()));
                prev = cut;
            }
        }
        prop_assert_eq!(state.emails(), n);
        prop_assert_eq!(&state.finish(), batch_verdicts);
    }
}
