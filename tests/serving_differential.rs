//! Serving differential suite: the load harness must never leak
//! nondeterminism into the analytical plane.
//!
//! `ets-loadgen` shares a process with the analytical pipeline in two
//! ways: the `ets-obs` registries (latency plane, counters, gauges) and
//! the `ets-parallel` worker pool. This suite pins the two contracts the
//! serving benchmark depends on:
//!
//! * the scenario *plan* (which connection does what) is byte-identical
//!   at 1, 2, and 8 worker threads — scheduling can reorder execution
//!   but never the workload definition;
//! * analytical results rendered to JSON are byte-identical whether they
//!   are computed on a quiet process or while a telemetry-attached
//!   loadgen storm hammers an in-process SMTP server, again across
//!   thread counts — the CI gate for "deterministic `results/*.json`
//!   stay byte-identical with the load harness attached".
//!
//! Thread count is process-global, so tests serialize on one lock.

use ets_collector::funnel::Funnel;
use ets_collector::infra::{CollectedEmail, CollectionInfra};
use ets_collector::traffic::{TrafficConfig, TrafficGenerator};
use ets_loadgen::runner::{run_phase, RunConfig, ServerSpec};
use ets_loadgen::scenario::{plan, render_plan, ScenarioMix};
use serde_json::json;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests that touch the global thread count or obs registries.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// One analytical "results file" rendered in memory: the funnel verdict
/// and sensitive-hit profile of a deterministic collected corpus, keyed
/// and serialized exactly like the `results/*.json` writers (sorted
/// JSON object, trailing newline).
fn analytical_results_json() -> String {
    let infra = CollectionInfra::build();
    let collected: Vec<CollectedEmail> =
        TrafficGenerator::new(&infra, TrafficConfig::test_scale(77))
            .generate()
            .into_iter()
            .map(|e| e.collected)
            .collect();
    let verdicts = Funnel::new(&infra).classify_all(&collected);
    let mut by_verdict = std::collections::BTreeMap::<String, u64>::new();
    for v in &verdicts {
        *by_verdict.entry(format!("{v:?}")).or_insert(0) += 1;
    }
    let pairs: Vec<serde_json::Value> = by_verdict
        .iter()
        .map(|(k, n)| json!({ "verdict": k, "count": n }))
        .collect();
    let doc = json!({
        "emails": collected.len(),
        "verdicts": pairs,
    });
    serde_json::to_string_pretty(&doc).expect("serializable") + "\n"
}

/// A small paper-mix storm against an in-process worker-pool server.
fn storm_cfg() -> (RunConfig, ServerSpec) {
    let mut spec = ServerSpec::pool();
    spec.read_timeout = Duration::from_millis(60);
    let mut cfg = RunConfig::smoke(spec.read_timeout);
    cfg.connections = 4;
    cfg.requests_per_conn = 12;
    (cfg, spec)
}

#[test]
fn scenario_plan_is_byte_identical_across_thread_counts() {
    let _g = lock();
    let mix = ScenarioMix::paper();
    ets_parallel::set_threads(1);
    let baseline = render_plan(&plan(&mix, 42, 32, 8));
    for threads in [2usize, 8] {
        ets_parallel::set_threads(threads);
        let p = render_plan(&plan(&mix, 42, 32, 8));
        assert_eq!(p, baseline, "scenario plan diverged at {threads} threads");
    }
    ets_parallel::set_threads(0);
}

#[test]
fn load_and_telemetry_do_not_perturb_analytical_results() {
    let _g = lock();
    ets_parallel::set_threads(1);
    let quiet = analytical_results_json();

    // Attach the full serving telemetry plane for the duration.
    let telemetry = ets_obs::serve::serve("127.0.0.1:0").expect("telemetry binds");

    for threads in [1usize, 2, 8] {
        ets_parallel::set_threads(threads);
        let (cfg, spec) = storm_cfg();
        let phase = format!("diff_t{threads}");
        let storm = {
            let phase = phase.clone();
            std::thread::spawn(move || run_phase(&phase, &cfg, &spec))
        };
        // Render the analytical results *while* the storm runs.
        let under_load = analytical_results_json();
        let result = storm
            .join()
            .expect("storm thread lives")
            .expect("storm phase runs");
        assert_eq!(
            under_load, quiet,
            "analytical results diverged under load at {threads} threads"
        );
        assert_eq!(result.lost_workers, 0);
        assert_eq!(result.stats.requests, 48);
        // The storm really did flow through the shared latency plane.
        let recorded = ets_obs::latency::snapshots()
            .into_iter()
            .find(|(name, _)| name == &format!("loadgen.{phase}.request_us"))
            .map(|(_, h)| h.count());
        assert_eq!(recorded, Some(48), "latency plane missed the storm");
    }

    // And once more after the storms, on a quiet process again.
    ets_parallel::set_threads(1);
    assert_eq!(analytical_results_json(), quiet);
    drop(telemetry);
    ets_parallel::set_threads(0);
}

#[test]
fn repeated_storms_yield_identical_taxonomy() {
    let _g = lock();
    // Same seed + config ⇒ the observed outcome taxonomy is identical
    // run over run even though wall-clock latencies differ.
    let (cfg, spec) = storm_cfg();
    let a = run_phase("diff_repeat_a", &cfg, &spec).expect("phase a");
    let b = run_phase("diff_repeat_b", &cfg, &spec).expect("phase b");
    assert_eq!(a.stats.observed, b.stats.observed);
    assert_eq!(a.stats.expected, b.stats.expected);
    assert_eq!(a.stats.per_scenario, b.stats.per_scenario);
    assert_eq!(a.stats.mismatches, 0);
    assert_eq!(b.stats.mismatches, 0);
    assert_eq!(a.delivered, b.delivered);
}
