//! # email-typosquatting
//!
//! A full reproduction of *Email Typosquatting* (Szurdi & Christin,
//! IMC 2017) as a Rust workspace: typo generation and distance metrics,
//! a simulated DNS/SMTP substrate, the five-layer spam/typo funnel, the
//! ecosystem census, the Section-6 projection regression, and the
//! honey-email campaigns.
//!
//! This facade crate re-exports the workspace members under one roof so
//! the examples and downstream users can depend on a single crate:
//!
//! * [`core`] — distances, typo generation, typing model, statistics.
//! * [`mail`] — the RFC 5322-subset message model.
//! * [`dns`] — zones, RFC 1035 wire codec, resolver, registry, WHOIS.
//! * [`smtp`] — sans-io SMTP state machines plus TCP drivers.
//! * [`ecosystem`] — the synthetic Internet and the §5 analyses.
//! * [`collector`] — the §4 measurement apparatus.
//! * [`honeypot`] — the §7 honey-email experiments.
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for
//! paper-vs-measured results, and `crates/experiments` for the `repro`
//! CLI that regenerates every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ets_collector as collector;
pub use ets_core as core;
pub use ets_dns as dns;
pub use ets_ecosystem as ecosystem;
pub use ets_honeypot as honeypot;
pub use ets_mail as mail;
pub use ets_smtp as smtp;

/// The paper's citation string.
pub const PAPER: &str =
    "Janos Szurdi and Nicolas Christin. Email Typosquatting. IMC 2017. doi:10.1145/3131365.3131399";

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        let d: crate::core::DomainName = "gmail.com".parse().unwrap();
        let typos = crate::core::typogen::generate_dl1(&d);
        assert!(!typos.is_empty());
        assert!(crate::PAPER.contains("IMC 2017"));
    }
}
